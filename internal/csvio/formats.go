package csvio

import (
	"fmt"
	"strconv"

	"genealog/internal/clickstream"
	"genealog/internal/core"
	"genealog/internal/linearroad"
	"genealog/internal/smartgrid"
)

// The workload formats register at init so any importer — trace replay, the
// provenance store's file log, cmd/genealog-prov — can encode and decode the
// evaluation queries' tuple types by name.
func init() {
	RegisterFormat("lr.position", &linearroad.PositionReport{}, ParsePositionReport, FormatPositionReport)
	RegisterFormat("lr.stopped", &linearroad.StoppedCar{}, ParseStoppedCar, FormatStoppedCar)
	RegisterFormat("lr.accident", &linearroad.AccidentAlert{}, ParseAccidentAlert, FormatAccidentAlert)
	RegisterFormat("sg.reading", &smartgrid.MeterReading{}, ParseMeterReading, FormatMeterReading)
	RegisterFormat("sg.daily", &smartgrid.DailyCons{}, ParseDailyCons, FormatDailyCons)
	RegisterFormat("sg.blackout", &smartgrid.BlackoutAlert{}, ParseBlackoutAlert, FormatBlackoutAlert)
	RegisterFormat("sg.anomaly", &smartgrid.AnomalyAlert{}, ParseAnomalyAlert, FormatAnomalyAlert)
	RegisterFormat("cs.click", &clickstream.ClickEvent{}, ParseClickEvent, FormatClickEvent)
	RegisterFormat("cs.engaged", &clickstream.EngagedClick{}, ParseEngagedClick, FormatEngagedClick)
	RegisterFormat("cs.count", &clickstream.SessionCount{}, ParseSessionCount, FormatSessionCount)
}

// ParsePositionReport parses the lr-gen format: ts,car_id,speed,pos.
func ParsePositionReport(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	car, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	speed, err := Int32Field(fields, 2)
	if err != nil {
		return nil, err
	}
	pos, err := Int32Field(fields, 3)
	if err != nil {
		return nil, err
	}
	return linearroad.NewPositionReport(ts, car, speed, pos), nil
}

// FormatPositionReport renders the lr-gen format.
func FormatPositionReport(t core.Tuple) ([]string, error) {
	p, ok := t.(*linearroad.PositionReport)
	if !ok {
		return nil, fmt.Errorf("want *linearroad.PositionReport, got %T", t)
	}
	return []string{
		strconv.FormatInt(p.Timestamp(), 10),
		strconv.Itoa(int(p.CarID)),
		strconv.Itoa(int(p.Speed)),
		strconv.Itoa(int(p.Pos)),
	}, nil
}

// ParseMeterReading parses the sg-gen format: ts,meter_id,cons.
func ParseMeterReading(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	meter, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	cons, err := Float64Field(fields, 2)
	if err != nil {
		return nil, err
	}
	return smartgrid.NewMeterReading(ts, meter, cons), nil
}

// FormatMeterReading renders the sg-gen format.
func FormatMeterReading(t core.Tuple) ([]string, error) {
	m, ok := t.(*smartgrid.MeterReading)
	if !ok {
		return nil, fmt.Errorf("want *smartgrid.MeterReading, got %T", t)
	}
	return []string{
		strconv.FormatInt(m.Timestamp(), 10),
		strconv.Itoa(int(m.MeterID)),
		strconv.FormatFloat(m.Cons, 'f', 4, 64),
	}, nil
}

// ParseStoppedCar parses Q1's sink tuple: ts,car_id,count,distinct_pos,last_pos.
func ParseStoppedCar(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	car, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	count, err := Int32Field(fields, 2)
	if err != nil {
		return nil, err
	}
	distinct, err := Int32Field(fields, 3)
	if err != nil {
		return nil, err
	}
	last, err := Int32Field(fields, 4)
	if err != nil {
		return nil, err
	}
	return &linearroad.StoppedCar{
		Base: core.NewBase(ts), CarID: car, Count: count, DistinctPos: distinct, LastPos: last,
	}, nil
}

// FormatStoppedCar renders Q1's sink tuple.
func FormatStoppedCar(t core.Tuple) ([]string, error) {
	s, ok := t.(*linearroad.StoppedCar)
	if !ok {
		return nil, fmt.Errorf("want *linearroad.StoppedCar, got %T", t)
	}
	return []string{
		strconv.FormatInt(s.Timestamp(), 10),
		strconv.Itoa(int(s.CarID)),
		strconv.Itoa(int(s.Count)),
		strconv.Itoa(int(s.DistinctPos)),
		strconv.Itoa(int(s.LastPos)),
	}, nil
}

// ParseAccidentAlert parses Q2's sink tuple: ts,pos,count.
func ParseAccidentAlert(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	pos, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	count, err := Int32Field(fields, 2)
	if err != nil {
		return nil, err
	}
	return &linearroad.AccidentAlert{Base: core.NewBase(ts), Pos: pos, Count: count}, nil
}

// FormatAccidentAlert renders Q2's sink tuple.
func FormatAccidentAlert(t core.Tuple) ([]string, error) {
	a, ok := t.(*linearroad.AccidentAlert)
	if !ok {
		return nil, fmt.Errorf("want *linearroad.AccidentAlert, got %T", t)
	}
	return []string{
		strconv.FormatInt(a.Timestamp(), 10),
		strconv.Itoa(int(a.Pos)),
		strconv.Itoa(int(a.Count)),
	}, nil
}

// ParseDailyCons parses the daily consumption sum: ts,meter_id,cons_sum.
func ParseDailyCons(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	meter, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	sum, err := Float64Field(fields, 2)
	if err != nil {
		return nil, err
	}
	return &smartgrid.DailyCons{Base: core.NewBase(ts), MeterID: meter, ConsSum: sum}, nil
}

// FormatDailyCons renders the daily consumption sum.
func FormatDailyCons(t core.Tuple) ([]string, error) {
	d, ok := t.(*smartgrid.DailyCons)
	if !ok {
		return nil, fmt.Errorf("want *smartgrid.DailyCons, got %T", t)
	}
	return []string{
		strconv.FormatInt(d.Timestamp(), 10),
		strconv.Itoa(int(d.MeterID)),
		strconv.FormatFloat(d.ConsSum, 'f', 4, 64),
	}, nil
}

// ParseBlackoutAlert parses Q3's sink tuple: ts,count.
func ParseBlackoutAlert(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	count, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	return &smartgrid.BlackoutAlert{Base: core.NewBase(ts), Count: count}, nil
}

// FormatBlackoutAlert renders Q3's sink tuple.
func FormatBlackoutAlert(t core.Tuple) ([]string, error) {
	a, ok := t.(*smartgrid.BlackoutAlert)
	if !ok {
		return nil, fmt.Errorf("want *smartgrid.BlackoutAlert, got %T", t)
	}
	return []string{
		strconv.FormatInt(a.Timestamp(), 10),
		strconv.Itoa(int(a.Count)),
	}, nil
}

// ParseAnomalyAlert parses Q4's sink tuple: ts,meter_id,cons_diff.
func ParseAnomalyAlert(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	meter, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	diff, err := Float64Field(fields, 2)
	if err != nil {
		return nil, err
	}
	return &smartgrid.AnomalyAlert{Base: core.NewBase(ts), MeterID: meter, ConsDiff: diff}, nil
}

// FormatAnomalyAlert renders Q4's sink tuple.
func FormatAnomalyAlert(t core.Tuple) ([]string, error) {
	a, ok := t.(*smartgrid.AnomalyAlert)
	if !ok {
		return nil, fmt.Errorf("want *smartgrid.AnomalyAlert, got %T", t)
	}
	return []string{
		strconv.FormatInt(a.Timestamp(), 10),
		strconv.Itoa(int(a.MeterID)),
		strconv.FormatFloat(a.ConsDiff, 'f', 4, 64),
	}, nil
}

// ParseClickEvent parses the cs-gen format: ts,user_id,page_id,dwell_ms.
func ParseClickEvent(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	user, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	page, err := Int32Field(fields, 2)
	if err != nil {
		return nil, err
	}
	dwell, err := Int64Field(fields, 3)
	if err != nil {
		return nil, err
	}
	return clickstream.NewClickEvent(ts, user, page, dwell), nil
}

// FormatClickEvent renders the cs-gen format.
func FormatClickEvent(t core.Tuple) ([]string, error) {
	c, ok := t.(*clickstream.ClickEvent)
	if !ok {
		return nil, fmt.Errorf("want *clickstream.ClickEvent, got %T", t)
	}
	return []string{
		strconv.FormatInt(c.Timestamp(), 10),
		strconv.Itoa(int(c.UserID)),
		strconv.Itoa(int(c.PageID)),
		strconv.FormatInt(c.DwellMs, 10),
	}, nil
}

// ParseEngagedClick parses Q5's intermediate tuple: ts,user_id,page_id.
func ParseEngagedClick(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	user, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	page, err := Int32Field(fields, 2)
	if err != nil {
		return nil, err
	}
	return &clickstream.EngagedClick{Base: core.NewBase(ts), UserID: user, PageID: page}, nil
}

// FormatEngagedClick renders Q5's intermediate tuple.
func FormatEngagedClick(t core.Tuple) ([]string, error) {
	e, ok := t.(*clickstream.EngagedClick)
	if !ok {
		return nil, fmt.Errorf("want *clickstream.EngagedClick, got %T", t)
	}
	return []string{
		strconv.FormatInt(e.Timestamp(), 10),
		strconv.Itoa(int(e.UserID)),
		strconv.Itoa(int(e.PageID)),
	}, nil
}

// ParseSessionCount parses Q5's sink tuple: ts,user_id,clicks.
func ParseSessionCount(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	user, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	clicks, err := Int32Field(fields, 2)
	if err != nil {
		return nil, err
	}
	return &clickstream.SessionCount{Base: core.NewBase(ts), UserID: user, Clicks: clicks}, nil
}

// FormatSessionCount renders Q5's sink tuple.
func FormatSessionCount(t core.Tuple) ([]string, error) {
	s, ok := t.(*clickstream.SessionCount)
	if !ok {
		return nil, fmt.Errorf("want *clickstream.SessionCount, got %T", t)
	}
	return []string{
		strconv.FormatInt(s.Timestamp(), 10),
		strconv.Itoa(int(s.UserID)),
		strconv.Itoa(int(s.Clicks)),
	}, nil
}
