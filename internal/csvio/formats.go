package csvio

import (
	"fmt"
	"strconv"

	"genealog/internal/core"
	"genealog/internal/linearroad"
	"genealog/internal/smartgrid"
)

// ParsePositionReport parses the lr-gen format: ts,car_id,speed,pos.
func ParsePositionReport(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	car, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	speed, err := Int32Field(fields, 2)
	if err != nil {
		return nil, err
	}
	pos, err := Int32Field(fields, 3)
	if err != nil {
		return nil, err
	}
	return linearroad.NewPositionReport(ts, car, speed, pos), nil
}

// FormatPositionReport renders the lr-gen format.
func FormatPositionReport(t core.Tuple) ([]string, error) {
	p, ok := t.(*linearroad.PositionReport)
	if !ok {
		return nil, fmt.Errorf("want *linearroad.PositionReport, got %T", t)
	}
	return []string{
		strconv.FormatInt(p.Timestamp(), 10),
		strconv.Itoa(int(p.CarID)),
		strconv.Itoa(int(p.Speed)),
		strconv.Itoa(int(p.Pos)),
	}, nil
}

// ParseMeterReading parses the sg-gen format: ts,meter_id,cons.
func ParseMeterReading(fields []string) (core.Tuple, error) {
	ts, err := Int64Field(fields, 0)
	if err != nil {
		return nil, err
	}
	meter, err := Int32Field(fields, 1)
	if err != nil {
		return nil, err
	}
	cons, err := Float64Field(fields, 2)
	if err != nil {
		return nil, err
	}
	return smartgrid.NewMeterReading(ts, meter, cons), nil
}

// FormatMeterReading renders the sg-gen format.
func FormatMeterReading(t core.Tuple) ([]string, error) {
	m, ok := t.(*smartgrid.MeterReading)
	if !ok {
		return nil, fmt.Errorf("want *smartgrid.MeterReading, got %T", t)
	}
	return []string{
		strconv.FormatInt(m.Timestamp(), 10),
		strconv.Itoa(int(m.MeterID)),
		strconv.FormatFloat(m.Cons, 'f', 4, 64),
	}, nil
}
