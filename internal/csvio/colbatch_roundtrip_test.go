package csvio_test

import (
	"fmt"
	"sync"
	"testing"

	"genealog/internal/clickstream"
	"genealog/internal/core"
	"genealog/internal/csvio"
	"genealog/internal/linearroad"
	"genealog/internal/ops"
	"genealog/internal/smartgrid"
)

// fieldGens synthesizes varied CSV rows for every registered workload
// format; the tuples under test come from each format's own registered
// parser. i varies the payload so columns hold distinct values.
var fieldGens = map[string]func(i int) []string{
	"lr.position": func(i int) []string {
		return []string{itoa(100 + i), itoa(i % 7), itoa(i % 3), itoa(40 + i)}
	},
	"lr.stopped": func(i int) []string {
		return []string{itoa(200 + i), itoa(i), itoa(4), itoa(1 + i%2), itoa(50 + i)}
	},
	"lr.accident": func(i int) []string {
		return []string{itoa(300 + i), itoa(60 + i), itoa(2 + i%3)}
	},
	"sg.reading": func(i int) []string {
		return []string{itoa(400 + i), itoa(i % 11), fmt.Sprintf("%d.25", i)}
	},
	"sg.daily": func(i int) []string {
		return []string{itoa(500 + i), itoa(i % 13), fmt.Sprintf("%d.5", i*3)}
	},
	"sg.blackout": func(i int) []string {
		return []string{itoa(600 + i), itoa(i)}
	},
	"sg.anomaly": func(i int) []string {
		return []string{itoa(700 + i), itoa(i % 5), fmt.Sprintf("%d.75", i*2)}
	},
	"cs.click": func(i int) []string {
		return []string{itoa(800 + i), itoa(i % 9), itoa(i % 17), itoa(500 + i*31)}
	},
	"cs.engaged": func(i int) []string {
		return []string{itoa(900 + i), itoa(i % 9), itoa(i % 17)}
	},
	"cs.count": func(i int) []string {
		return []string{itoa(1000 + i), itoa(i % 9), itoa(1 + i%8)}
	},
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// workloadSchemas merges the per-workload columnar schema maps, keyed by
// csvio format name.
func workloadSchemas() map[string]*ops.ColSchema {
	out := make(map[string]*ops.ColSchema)
	for name, s := range linearroad.Schemas() {
		out[name] = s
	}
	for name, s := range smartgrid.Schemas() {
		out[name] = s
	}
	for name, s := range clickstream.Schemas() {
		out[name] = s
	}
	return out
}

// TestColBatchRoundTripAllFormats is the columnar representation's
// round-trip property over every registered workload tuple type: for each
// csvio format, tuples built by its own parser — meta fields populated —
// convert to a ColBatch whose typed columns agree with the schema's
// extractors field by field, and convert back to the identical tuples,
// meta-attributes, provenance links and all. The format enumeration keeps
// the property total: registering a new workload format without a columnar
// schema (or without a row generator here) fails the test instead of
// silently staying row-only.
func TestColBatchRoundTripAllFormats(t *testing.T) {
	schemas := workloadSchemas()
	for _, f := range csvio.Formats() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			gen, ok := fieldGens[f.Name]
			if !ok {
				t.Fatalf("format %q has no row generator in this test; add one", f.Name)
			}
			schema, ok := schemas[f.Name]
			if !ok {
				t.Fatalf("format %q has no columnar schema; declare it in the workload's columns.go", f.Name)
			}
			if err := schema.Validate(); err != nil {
				t.Fatal(err)
			}

			const n = 64
			batch := make(ops.Batch, 0, n)
			anchor := core.NewBase(1) // provenance link target
			for i := 0; i < n; i++ {
				tup, err := f.Parse(gen(i))
				if err != nil {
					t.Fatalf("parse row %d: %v", i, err)
				}
				m := core.MetaOf(tup)
				m.SetID(uint64(1000 + i))
				m.SetStimulus(int64(i) * 17)
				m.SetU1(&anchor)
				batch = append(batch, tup)
			}

			cb := ops.ToColBatch(batch, schema)
			if cb.Len() != n {
				t.Fatalf("ColBatch.Len() = %d, want %d", cb.Len(), n)
			}
			ts := cb.Timestamps()
			for i, tup := range batch {
				if ts[i] != tup.Timestamp() {
					t.Fatalf("Timestamps()[%d] = %d, want %d", i, ts[i], tup.Timestamp())
				}
			}
			for fi, field := range schema.Fields {
				for i, tup := range batch {
					switch field.Kind {
					case ops.ColInt64:
						if got, want := cb.Int64s(fi)[i], field.Int(tup); got != want {
							t.Fatalf("field %q row %d = %d, want %d", field.Name, i, got, want)
						}
					case ops.ColFloat64:
						if got, want := cb.Float64s(fi)[i], field.Float(tup); got != want {
							t.Fatalf("field %q row %d = %g, want %g", field.Name, i, got, want)
						}
					case ops.ColString:
						if got, want := cb.Strings(fi)[i], field.Str(tup); got != want {
							t.Fatalf("field %q row %d = %q, want %q", field.Name, i, got, want)
						}
					}
				}
			}

			back := cb.ToRowBatch()
			if len(back) != n {
				t.Fatalf("round trip returned %d tuples, want %d", len(back), n)
			}
			for i := range batch {
				if back[i] != batch[i] {
					t.Fatalf("row %d: round trip returned a different tuple object", i)
				}
				m := core.MetaOf(back[i])
				if m.ID() != uint64(1000+i) || m.Stimulus() != int64(i)*17 || m.U1() != core.Tuple(&anchor) {
					t.Fatalf("row %d: meta fields disturbed: id=%d stim=%d", i, m.ID(), m.Stimulus())
				}
			}
		})
	}
}

// TestColBatchConcurrentExtraction drives the same schema from several
// goroutines at once — the lazy slot index must be race-free (run under
// -race to make this bite).
func TestColBatchConcurrentExtraction(t *testing.T) {
	schemas := workloadSchemas()
	var wg sync.WaitGroup
	for _, f := range csvio.Formats() {
		gen := fieldGens[f.Name]
		schema := schemas[f.Name]
		if gen == nil || schema == nil {
			continue // coverage enforced by TestColBatchRoundTripAllFormats
		}
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(parse csvio.ParseFunc, gen func(int) []string, schema *ops.ColSchema) {
				defer wg.Done()
				batch := make(ops.Batch, 0, 32)
				for i := 0; i < 32; i++ {
					tup, err := parse(gen(i))
					if err != nil {
						t.Error(err)
						return
					}
					batch = append(batch, tup)
				}
				cb := ops.ToColBatch(batch, schema)
				if cb.Len() != 32 {
					t.Errorf("Len() = %d, want 32", cb.Len())
				}
			}(f.Parse, gen, schema)
		}
	}
	wg.Wait()
}
