// Package csvio replays and persists tuple streams as CSV files, bridging
// the workload generators (cmd/lr-gen, cmd/sg-gen) and the queries: a
// recorded trace can be replayed through any query, and sink tuples or
// provenance results can be persisted for offline inspection — the paper's
// evaluation stores each sink tuple's provenance on disk (§7).
package csvio

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"genealog/internal/core"
	"genealog/internal/ops"
)

// ParseFunc converts one CSV record (already split into fields) into a
// tuple.
type ParseFunc func(fields []string) (core.Tuple, error)

// FormatFunc converts a tuple into CSV fields.
type FormatFunc func(t core.Tuple) ([]string, error)

// Source returns an ops.SourceFunc replaying the CSV stream from r. A
// leading header line is skipped when header is true. Records must be in
// non-decreasing timestamp order (the generators guarantee it); violations
// fail the query rather than silently breaking determinism.
func Source(r io.Reader, header bool, parse ParseFunc) ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		line := 0
		last := int64(0)
		started := false
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			if header && line == 1 {
				continue
			}
			t, err := parse(strings.Split(text, ","))
			if err != nil {
				return fmt.Errorf("csvio: line %d: %w", line, err)
			}
			if started && t.Timestamp() < last {
				return fmt.Errorf("csvio: line %d: timestamp %d regresses below %d", line, t.Timestamp(), last)
			}
			last, started = t.Timestamp(), true
			if err := emit(t); err != nil {
				return err
			}
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
		return nil
	}
}

// Sink returns an ops.SinkFunc writing one CSV record per sink tuple to w.
// Call Flush (on the returned writer) after the query drains.
func Sink(w *bufio.Writer, format FormatFunc) ops.SinkFunc {
	return func(t core.Tuple) error {
		fields, err := format(t)
		if err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
		if _, err := w.WriteString(strings.Join(fields, ",")); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
		if err := w.WriteByte('\n'); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
		return nil
	}
}

// Int32Field parses a CSV field as int32.
func Int32Field(fields []string, i int) (int32, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("missing field %d", i)
	}
	v, err := strconv.ParseInt(strings.TrimSpace(fields[i]), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("field %d: %w", i, err)
	}
	return int32(v), nil
}

// Int64Field parses a CSV field as int64.
func Int64Field(fields []string, i int) (int64, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("missing field %d", i)
	}
	v, err := strconv.ParseInt(strings.TrimSpace(fields[i]), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("field %d: %w", i, err)
	}
	return v, nil
}

// Float64Field parses a CSV field as float64.
func Float64Field(fields []string, i int) (float64, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("missing field %d", i)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(fields[i]), 64)
	if err != nil {
		return 0, fmt.Errorf("field %d: %w", i, err)
	}
	return v, nil
}
