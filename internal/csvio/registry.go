package csvio

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"genealog/internal/core"
)

// Format is a named, registered CSV encoding of one concrete tuple type.
// Registered formats are how components that persist tuples without knowing
// their concrete types — the provenance store's file log, offline traces —
// encode payloads: the format name travels with the record, so any process
// can render the fields, and a process that has the format registered can
// reconstruct the tuple.
type Format struct {
	// Name identifies the format on disk (e.g. "lr.position").
	Name string
	// Parse converts CSV fields back into a tuple.
	Parse ParseFunc
	// Format converts a tuple into CSV fields.
	Format FormatFunc
}

var (
	regMu     sync.RWMutex
	byName    = make(map[string]Format)
	byTupType = make(map[reflect.Type]Format)
)

// RegisterFormat registers a named CSV format for the concrete type of proto.
// Workload packages register their tuple types at init; applications with
// custom tuple types (see examples/quickstart) register theirs before
// persisting provenance. Registering a duplicate name or type panics: formats
// are process-global wiring, and a silent overwrite would corrupt stores.
func RegisterFormat(name string, proto core.Tuple, parse ParseFunc, format FormatFunc) {
	if name == "" || proto == nil || parse == nil || format == nil {
		panic("csvio: RegisterFormat needs a name, a prototype tuple, a parser and a formatter")
	}
	typ := reflect.TypeOf(proto)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := byName[name]; dup {
		panic(fmt.Sprintf("csvio: format %q already registered", name))
	}
	if f, dup := byTupType[typ]; dup {
		panic(fmt.Sprintf("csvio: tuple type %v already registered as %q", typ, f.Name))
	}
	f := Format{Name: name, Parse: parse, Format: format}
	byName[name] = f
	byTupType[typ] = f
}

// FormatNamed returns the format registered under name.
func FormatNamed(name string) (Format, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := byName[name]
	return f, ok
}

// FormatOf returns the format registered for t's concrete type.
func FormatOf(t core.Tuple) (Format, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := byTupType[reflect.TypeOf(t)]
	return f, ok
}

// Formats returns every registered format, sorted by name.
func Formats() []Format {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Format, 0, len(byName))
	for _, f := range byName {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// EncodeTuple renders t through its registered format and returns the format
// name and the CSV fields. It fails when t's type has no registered format.
func EncodeTuple(t core.Tuple) (name string, fields []string, err error) {
	f, ok := FormatOf(t)
	if !ok {
		return "", nil, fmt.Errorf("csvio: no format registered for %T", t)
	}
	fields, err = f.Format(t)
	if err != nil {
		return "", nil, err
	}
	return f.Name, fields, nil
}

// DecodeTuple reconstructs a tuple from a format name and CSV fields.
func DecodeTuple(name string, fields []string) (core.Tuple, error) {
	f, ok := FormatNamed(name)
	if !ok {
		return nil, fmt.Errorf("csvio: unknown format %q", name)
	}
	return f.Parse(fields)
}

// JoinFields renders fields as one CSV line, quoting only fields that need
// it (RFC 4180 style: the field is wrapped in double quotes, inner quotes
// doubled), so a field containing a comma, quote, CR or LF survives a round
// trip through SplitFields byte-for-byte. Fields without such characters
// join byte-identically to a plain comma join. (encoding/csv is not used
// because its reader normalises CRLF inside quoted fields.) The one
// ambiguity: a zero-field slice joins to "", which splits back to one empty
// field — registered formats always render at least one field.
func JoinFields(fields []string) string {
	plain := true
	for _, f := range fields {
		if strings.ContainsAny(f, ",\"\r\n") {
			plain = false
			break
		}
	}
	if plain {
		return strings.Join(fields, ",")
	}
	var sb strings.Builder
	for i, f := range fields {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(f, ",\"\r\n") {
			sb.WriteByte('"')
			sb.WriteString(strings.ReplaceAll(f, `"`, `""`))
			sb.WriteByte('"')
		} else {
			sb.WriteString(f)
		}
	}
	return sb.String()
}

// SplitFields is JoinFields' inverse: it recovers the field slice from a
// joined payload line.
func SplitFields(payload string) ([]string, error) {
	if !strings.Contains(payload, `"`) {
		return strings.Split(payload, ","), nil
	}
	var fields []string
	i := 0
	for {
		if i < len(payload) && payload[i] == '"' {
			var sb strings.Builder
			i++
			for {
				j := strings.IndexByte(payload[i:], '"')
				if j < 0 {
					return nil, fmt.Errorf("csvio: split %q: unterminated quote", payload)
				}
				sb.WriteString(payload[i : i+j])
				i += j + 1
				if i < len(payload) && payload[i] == '"' {
					sb.WriteByte('"') // doubled quote: literal
					i++
					continue
				}
				break
			}
			fields = append(fields, sb.String())
			if i == len(payload) {
				return fields, nil
			}
			if payload[i] != ',' {
				return nil, fmt.Errorf("csvio: split %q: data after closing quote", payload)
			}
			i++
			continue
		}
		j := strings.IndexByte(payload[i:], ',')
		if j < 0 {
			return append(fields, payload[i:]), nil
		}
		fields = append(fields, payload[i:i+j])
		i += j + 1
	}
}
