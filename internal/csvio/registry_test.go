package csvio

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"genealog/internal/clickstream"
	"genealog/internal/core"
	"genealog/internal/linearroad"
	"genealog/internal/smartgrid"
)

// generators produces random tuples for every registered format. The
// round-trip property test iterates Formats(), so registering a new format
// without adding a generator here fails the test — coverage cannot rot
// silently.
var generators = map[string]func(r *rand.Rand) core.Tuple{
	"lr.position": func(r *rand.Rand) core.Tuple {
		return linearroad.NewPositionReport(r.Int63n(1e9), int32(r.Intn(1e6)), int32(r.Intn(200)), int32(r.Intn(1e6)))
	},
	"lr.stopped": func(r *rand.Rand) core.Tuple {
		return &linearroad.StoppedCar{
			Base:  core.NewBase(r.Int63n(1e9)),
			CarID: int32(r.Intn(1e6)), Count: int32(r.Intn(100)),
			DistinctPos: int32(r.Intn(100)), LastPos: int32(r.Intn(1e6)),
		}
	},
	"lr.accident": func(r *rand.Rand) core.Tuple {
		return &linearroad.AccidentAlert{
			Base: core.NewBase(r.Int63n(1e9)),
			Pos:  int32(r.Intn(1e6)), Count: int32(r.Intn(100)),
		}
	},
	"sg.reading": func(r *rand.Rand) core.Tuple {
		return smartgrid.NewMeterReading(r.Int63n(1e9), int32(r.Intn(1e6)), quantized(r))
	},
	"sg.daily": func(r *rand.Rand) core.Tuple {
		return &smartgrid.DailyCons{
			Base:    core.NewBase(r.Int63n(1e9)),
			MeterID: int32(r.Intn(1e6)), ConsSum: quantized(r),
		}
	},
	"sg.blackout": func(r *rand.Rand) core.Tuple {
		return &smartgrid.BlackoutAlert{Base: core.NewBase(r.Int63n(1e9)), Count: int32(r.Intn(1000))}
	},
	"sg.anomaly": func(r *rand.Rand) core.Tuple {
		return &smartgrid.AnomalyAlert{
			Base:    core.NewBase(r.Int63n(1e9)),
			MeterID: int32(r.Intn(1e6)), ConsDiff: quantized(r),
		}
	},
	"cs.click": func(r *rand.Rand) core.Tuple {
		return clickstream.NewClickEvent(r.Int63n(1e9), int32(r.Intn(1e6)), int32(r.Intn(1e4)), r.Int63n(60000))
	},
	"cs.engaged": func(r *rand.Rand) core.Tuple {
		return &clickstream.EngagedClick{
			Base:   core.NewBase(r.Int63n(1e9)),
			UserID: int32(r.Intn(1e6)), PageID: int32(r.Intn(1e4)),
		}
	},
	"cs.count": func(r *rand.Rand) core.Tuple {
		return &clickstream.SessionCount{
			Base:   core.NewBase(r.Int63n(1e9)),
			UserID: int32(r.Intn(1e6)), Clicks: int32(1 + r.Intn(100)),
		}
	},
}

// quantized returns a float that survives the formats' 4-decimal rendering
// exactly, so round-trips can be compared with ==.
func quantized(r *rand.Rand) float64 {
	return math.Round(r.Float64()*1e7) / 1e4
}

// TestFormatsRoundTripProperty: for every registered format, random tuples
// survive format -> parse -> format with identical fields, and the parsed
// tuple equals the original in payload and timestamp.
func TestFormatsRoundTripProperty(t *testing.T) {
	formats := Formats()
	if len(formats) == 0 {
		t.Fatal("no registered formats")
	}
	for _, f := range formats {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			gen := generators[f.Name]
			if gen == nil {
				t.Fatalf("no random generator for registered format %q — add one to keep the round-trip property covering every format", f.Name)
			}
			r := rand.New(rand.NewSource(int64(len(f.Name)) * 7919))
			for i := 0; i < 200; i++ {
				orig := gen(r)
				fields, err := f.Format(orig)
				if err != nil {
					t.Fatalf("Format(%+v): %v", orig, err)
				}
				parsed, err := f.Parse(fields)
				if err != nil {
					t.Fatalf("Parse(%v): %v", fields, err)
				}
				if parsed.Timestamp() != orig.Timestamp() {
					t.Fatalf("timestamp: parsed %d, want %d", parsed.Timestamp(), orig.Timestamp())
				}
				if reflect.TypeOf(parsed) != reflect.TypeOf(orig) {
					t.Fatalf("type: parsed %T, want %T", parsed, orig)
				}
				again, err := f.Format(parsed)
				if err != nil {
					t.Fatalf("re-Format(%+v): %v", parsed, err)
				}
				if !reflect.DeepEqual(fields, again) {
					t.Fatalf("round trip drifted: %v -> %v", fields, again)
				}
				// The registry resolves the tuple back to the same format.
				byType, ok := FormatOf(parsed)
				if !ok || byType.Name != f.Name {
					t.Fatalf("FormatOf(%T) = %q, want %q", parsed, byType.Name, f.Name)
				}
			}
		})
	}
}

// TestFormatsRejectMalformedLines: every registered parser must error (not
// panic, not fabricate values) on truncated and non-numeric records.
func TestFormatsRejectMalformedLines(t *testing.T) {
	for _, f := range Formats() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			gen := generators[f.Name]
			if gen == nil {
				t.Fatalf("no generator for %q", f.Name)
			}
			good, err := f.Format(gen(rand.New(rand.NewSource(1))))
			if err != nil {
				t.Fatal(err)
			}
			// Truncations: every prefix shorter than the full record.
			for n := 0; n < len(good); n++ {
				if _, err := f.Parse(good[:n]); err == nil {
					t.Fatalf("Parse(%v) with %d/%d fields must fail", good[:n], n, len(good))
				}
			}
			// Field corruption: each field replaced by junk.
			for i := range good {
				bad := append([]string(nil), good...)
				bad[i] = "not-a-number"
				if _, err := f.Parse(bad); err == nil {
					t.Fatalf("Parse(%v) with corrupt field %d must fail", bad, i)
				}
			}
			// Empty record.
			if _, err := f.Parse(nil); err == nil {
				t.Fatal("Parse(nil) must fail")
			}
		})
	}
}

// TestEncodeDecodeTuple covers the registry's convenience pair and its error
// paths.
func TestEncodeDecodeTuple(t *testing.T) {
	name, fields, err := EncodeTuple(linearroad.NewPositionReport(30, 1, 2, 3))
	if err != nil || name != "lr.position" {
		t.Fatalf("EncodeTuple = %q, %v", name, err)
	}
	back, err := DecodeTuple(name, fields)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := back.(*linearroad.PositionReport); !ok || p.Timestamp() != 30 || p.Pos != 3 {
		t.Fatalf("DecodeTuple = %#v", back)
	}

	type unregistered struct{ core.Base }
	if _, _, err := EncodeTuple(&unregistered{}); err == nil {
		t.Fatal("EncodeTuple of an unregistered type must fail")
	}
	if _, err := DecodeTuple("no.such.format", nil); err == nil {
		t.Fatal("DecodeTuple of an unknown format must fail")
	}
}

// TestRegisterFormatGuards: duplicate names and types, and nil arguments,
// panic loudly instead of silently overwriting process-global wiring.
func TestRegisterFormatGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		fn()
	}
	parse := func([]string) (core.Tuple, error) { return nil, fmt.Errorf("unused") }
	format := func(core.Tuple) ([]string, error) { return nil, fmt.Errorf("unused") }
	mustPanic("duplicate name", func() {
		RegisterFormat("lr.position", &struct{ core.Base }{}, parse, format)
	})
	mustPanic("duplicate type", func() {
		RegisterFormat("lr.position-again", &linearroad.PositionReport{}, parse, format)
	})
	mustPanic("nil parser", func() {
		RegisterFormat("x", &struct{ core.Base }{}, nil, format)
	})
}

// TestJoinSplitFields covers the payload join used by the provenance store:
// plain fields must join byte-identically to a comma join, and fields
// containing CSV metacharacters must survive a round trip.
func TestJoinSplitFields(t *testing.T) {
	cases := [][]string{
		{"42", "1", "5.0000"},
		{"rack-1,bay-2", "ok"},
		{`says "hi"`, "x"},
		{"line\nbreak", "y"},
		{"crlf\r\nkept", "z"}, // must survive byte-for-byte, not normalise to \n
		{""},
		{},
	}
	for _, fields := range cases {
		joined := JoinFields(fields)
		got, err := SplitFields(joined)
		if err != nil {
			t.Fatalf("SplitFields(%q): %v", joined, err)
		}
		want := fields
		if len(fields) == 0 {
			want = []string{""} // "" splits to one empty field
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %q -> %q -> %q", fields, joined, got)
		}
	}
	if got := JoinFields([]string{"1", "2"}); got != "1,2" {
		t.Fatalf("plain join = %q, want identical to comma join", got)
	}
	for _, malformed := range []string{`"unterminated`, `"closed"junk`} {
		if _, err := SplitFields(malformed); err == nil {
			t.Fatalf("SplitFields(%q) must fail", malformed)
		}
	}
}
