package csvio

import (
	"bufio"
	"context"
	"strings"
	"testing"

	"genealog/internal/core"
	"genealog/internal/linearroad"
	"genealog/internal/query"
	"genealog/internal/smartgrid"
)

func collect(t *testing.T, src func(context.Context, func(core.Tuple) error) error) []core.Tuple {
	t.Helper()
	var out []core.Tuple
	if err := src(context.Background(), func(tp core.Tuple) error {
		out = append(out, tp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSourceParsesPositionReports(t *testing.T) {
	csv := "ts,car_id,speed,pos\n0,1,55,100\n30,1,0,130\n\n60,2,80,500\n"
	got := collect(t, Source(strings.NewReader(csv), true, ParsePositionReport))
	if len(got) != 3 {
		t.Fatalf("parsed %d tuples, want 3", len(got))
	}
	p := got[1].(*linearroad.PositionReport)
	if p.Timestamp() != 30 || p.CarID != 1 || p.Speed != 0 || p.Pos != 130 {
		t.Fatalf("tuple = %+v", p)
	}
}

func TestSourceRejectsRegressingTimestamps(t *testing.T) {
	csv := "10,1,55,100\n5,1,55,100\n"
	err := Source(strings.NewReader(csv), false, ParsePositionReport)(
		context.Background(), func(core.Tuple) error { return nil })
	if err == nil {
		t.Fatal("regressing timestamps must fail")
	}
}

func TestSourceRejectsMalformedRecords(t *testing.T) {
	for _, csv := range []string{"abc,1,2,3\n", "1,2,3\n", "1,2,3,x\n"} {
		err := Source(strings.NewReader(csv), false, ParsePositionReport)(
			context.Background(), func(core.Tuple) error { return nil })
		if err == nil {
			t.Fatalf("malformed record %q must fail", csv)
		}
	}
}

func TestMeterReadingRoundTrip(t *testing.T) {
	in := smartgrid.NewMeterReading(25, 7, 1.5)
	fields, err := FormatMeterReading(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseMeterReading(fields)
	if err != nil {
		t.Fatal(err)
	}
	m := out.(*smartgrid.MeterReading)
	if m.Timestamp() != 25 || m.MeterID != 7 || m.Cons != 1.5 {
		t.Fatalf("round trip = %+v", m)
	}
}

func TestPositionReportRoundTrip(t *testing.T) {
	in := linearroad.NewPositionReport(30, 2, 0, 77)
	fields, err := FormatPositionReport(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParsePositionReport(fields)
	if err != nil {
		t.Fatal(err)
	}
	p := out.(*linearroad.PositionReport)
	if p.Timestamp() != 30 || p.CarID != 2 || p.Speed != 0 || p.Pos != 77 {
		t.Fatalf("round trip = %+v", p)
	}
}

func TestFormatRejectsWrongType(t *testing.T) {
	if _, err := FormatPositionReport(smartgrid.NewMeterReading(1, 1, 1)); err == nil {
		t.Fatal("wrong tuple type must fail")
	}
	if _, err := FormatMeterReading(linearroad.NewPositionReport(1, 1, 1, 1)); err == nil {
		t.Fatal("wrong tuple type must fail")
	}
}

// TestReplayThroughQuery: a generated trace written to CSV and replayed
// through Q1 must produce the same alerts as the live generator.
func TestReplayThroughQuery(t *testing.T) {
	cfg := linearroad.Config{Cars: 8, Steps: 60, StopEvery: 9, StopDuration: 5, Seed: 3}

	// Record the generated stream to CSV.
	var sb strings.Builder
	w := bufio.NewWriter(&sb)
	sink := Sink(w, FormatPositionReport)
	if err := linearroad.NewGenerator(cfg).SourceFunc()(context.Background(), func(tp core.Tuple) error {
		return sink(tp)
	}); err != nil {
		t.Fatal(err)
	}
	w.Flush()

	runQ1 := func(src func(context.Context, func(core.Tuple) error) error) int {
		b := query.New("q1", query.WithInstrumenter(&core.Genealog{}))
		s := b.AddSource("src", src)
		last := linearroad.AddQ1(b, s)
		alerts := 0
		b.Connect(last, b.AddSink("k", func(core.Tuple) error { alerts++; return nil }))
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return alerts
	}

	live := runQ1(linearroad.NewGenerator(cfg).SourceFunc())
	replayed := runQ1(Source(strings.NewReader(sb.String()), false, ParsePositionReport))
	if live == 0 {
		t.Fatal("workload produced no alerts")
	}
	if live != replayed {
		t.Fatalf("live run %d alerts, CSV replay %d", live, replayed)
	}
}
