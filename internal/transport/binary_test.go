package transport

import (
	"io"
	"sync"
	"testing"

	"genealog/internal/core"
)

// bwTuple is the binary-codec test tuple.
type bwTuple struct {
	core.Base
	A int32
	B float64
}

var _ WireTuple = (*bwTuple)(nil)

func (t *bwTuple) MarshalWire(buf []byte) ([]byte, error) {
	buf = AppendInt32(buf, t.A)
	buf = AppendFloat64(buf, t.B)
	return buf, nil
}

func (t *bwTuple) UnmarshalWire(data []byte) error {
	var err error
	if t.A, data, err = ReadInt32(data); err != nil {
		return err
	}
	t.B, _, err = ReadFloat64(data)
	return err
}

// bwNested nests another tuple.
type bwNested struct {
	core.Base
	Inner core.Tuple
}

var _ WireTuple = (*bwNested)(nil)

func (t *bwNested) MarshalWire(buf []byte) ([]byte, error) {
	return AppendTupleWire(buf, t.Inner)
}

func (t *bwNested) UnmarshalWire(data []byte) error {
	var err error
	t.Inner, _, err = ReadTupleWire(data)
	return err
}

var registerBinaryOnce sync.Once

func registerBinaryTest() {
	registerBinaryOnce.Do(func() {
		RegisterBinary(200, func() WireTuple { return &bwTuple{} })
		RegisterBinary(201, func() WireTuple { return &bwNested{} })
	})
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	registerBinaryTest()
	pipe := NewPipe(0)
	enc := BinaryCodec{}.NewEncoder(pipe)
	dec := BinaryCodec{}.NewDecoder(pipe)

	in := &bwTuple{Base: core.NewBase(42), A: 7, B: 3.25}
	in.SetStimulus(99)
	in.SetID(123)
	in.SetKind(core.KindAggregate)
	in.SetAnnotation([]uint64{1, 2, 3})
	in.SetU1(&bwTuple{}) // must not survive

	if err := enc.Encode(in); err != nil {
		t.Fatal(err)
	}
	pipe.Close()
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	out := got.(*bwTuple)
	if out.Timestamp() != 42 || out.A != 7 || out.B != 3.25 {
		t.Fatalf("payload lost: %+v", out)
	}
	m := out.ProvMeta()
	if m.Stimulus() != 99 || m.ID() != 123 || m.Kind() != core.KindAggregate {
		t.Fatalf("meta lost: %+v", m)
	}
	if len(m.Annotation()) != 3 || m.Annotation()[2] != 3 {
		t.Fatalf("annotation lost: %v", m.Annotation())
	}
	if m.U1() != nil {
		t.Fatal("pointers must not survive")
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBinaryCodecHeartbeat(t *testing.T) {
	registerBinaryTest()
	pipe := NewPipe(0)
	enc := BinaryCodec{}.NewEncoder(pipe)
	dec := BinaryCodec{}.NewDecoder(pipe)
	if err := enc.Encode(core.NewHeartbeat(77)); err != nil {
		t.Fatal(err)
	}
	pipe.Close()
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !core.IsHeartbeat(got) || got.Timestamp() != 77 {
		t.Fatalf("heartbeat lost: %T %d", got, got.Timestamp())
	}
}

func TestBinaryCodecNestedTuples(t *testing.T) {
	registerBinaryTest()
	pipe := NewPipe(0)
	enc := BinaryCodec{}.NewEncoder(pipe)
	dec := BinaryCodec{}.NewDecoder(pipe)

	inner := &bwTuple{Base: core.NewBase(5), A: 1, B: 2}
	inner.SetID(55)
	inner.SetKind(core.KindSource)
	in := &bwNested{Base: core.NewBase(9), Inner: inner}
	if err := enc.Encode(in); err != nil {
		t.Fatal(err)
	}
	empty := &bwNested{Base: core.NewBase(10)} // nil inner
	if err := enc.Encode(empty); err != nil {
		t.Fatal(err)
	}
	pipe.Close()

	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	out := got.(*bwNested)
	gi, ok := out.Inner.(*bwTuple)
	if !ok {
		t.Fatalf("inner = %T", out.Inner)
	}
	if gi.Timestamp() != 5 || gi.A != 1 || core.MetaOf(gi).ID() != 55 || core.MetaOf(gi).Kind() != core.KindSource {
		t.Fatalf("inner lost: %+v", gi)
	}
	got, err = dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got.(*bwNested).Inner != nil {
		t.Fatal("nil inner must round-trip as nil")
	}
}

func TestBinaryCodecUnregisteredType(t *testing.T) {
	registerBinaryTest()
	pipe := NewPipe(0)
	enc := BinaryCodec{}.NewEncoder(pipe)
	if err := enc.Encode(wt(1, "k", 1)); err == nil {
		t.Fatal("unregistered types must fail to encode")
	}
}

func TestBinaryCodecMalformedFrames(t *testing.T) {
	registerBinaryTest()
	// Implausible frame length.
	pipe := NewPipe(0)
	pipe.Write([]byte{0xff, 0xff, 0xff, 0xff})
	pipe.Close()
	if _, err := (BinaryCodec{}).NewDecoder(pipe).Decode(); err == nil {
		t.Fatal("oversized frame must fail")
	}
	// Truncated frame.
	pipe = NewPipe(0)
	pipe.Write([]byte{10, 0, 0, 0, 1, 2, 3})
	pipe.Close()
	if _, err := (BinaryCodec{}).NewDecoder(pipe).Decode(); err == nil {
		t.Fatal("truncated frame must fail")
	}
	// Unknown tag.
	pipe = NewPipe(0)
	var frame []byte
	frame = append(frame, 0xEE, 0xEE) // tag 0xEEEE
	frame = appendMeta(frame, nil, 0)
	hdr := []byte{byte(len(frame)), 0, 0, 0}
	pipe.Write(hdr)
	pipe.Write(frame)
	pipe.Close()
	if _, err := (BinaryCodec{}).NewDecoder(pipe).Decode(); err == nil {
		t.Fatal("unknown tag must fail")
	}
}

func TestBinaryCodecManyTuples(t *testing.T) {
	registerBinaryTest()
	pipe := NewPipe(0)
	enc := BinaryCodec{}.NewEncoder(pipe)
	dec := BinaryCodec{}.NewDecoder(pipe)
	const n = 2000
	go func() {
		for i := 0; i < n; i++ {
			if err := enc.Encode(&bwTuple{Base: core.NewBase(int64(i)), A: int32(i), B: float64(i)}); err != nil {
				t.Error(err)
				return
			}
		}
		pipe.Close()
	}()
	for i := 0; i < n; i++ {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if got.Timestamp() != int64(i) || got.(*bwTuple).A != int32(i) {
			t.Fatalf("tuple %d corrupted", i)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRegisterBinaryReservedTag(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tag 0 must be rejected")
		}
	}()
	RegisterBinary(0, func() WireTuple { return &bwTuple{} })
}
