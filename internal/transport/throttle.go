package transport

import (
	"io"
	"sync"
	"time"
)

// ThrottledWriter limits the byte rate of an underlying writer with a token
// bucket, modelling a constrained network link (the paper's testbed uses a
// 100 Mbps switch; the baseline saturates it by shipping whole source
// streams, §7). The zero rate means unlimited.
type ThrottledWriter struct {
	w io.Writer

	mu          sync.Mutex
	bytesPerSec float64
	tokens      float64
	burst       float64
	last        time.Time
	now         func() time.Time
	sleep       func(time.Duration)
}

// NewThrottledWriter wraps w with a byte-rate limit. bytesPerSec <= 0
// disables throttling.
func NewThrottledWriter(w io.Writer, bytesPerSec float64) *ThrottledWriter {
	return &ThrottledWriter{
		w:           w,
		bytesPerSec: bytesPerSec,
		burst:       bytesPerSec / 10, // 100 ms of burst
		tokens:      bytesPerSec / 10,
		now:         time.Now,
		sleep:       time.Sleep,
	}
}

var _ io.Writer = (*ThrottledWriter)(nil)

// Write implements io.Writer, sleeping as needed to respect the byte rate.
func (t *ThrottledWriter) Write(b []byte) (int, error) {
	if t.bytesPerSec > 0 {
		t.reserve(float64(len(b)))
	}
	return t.w.Write(b)
}

func (t *ThrottledWriter) reserve(n float64) {
	t.mu.Lock()
	now := t.now()
	if t.last.IsZero() {
		t.last = now
	}
	t.tokens += now.Sub(t.last).Seconds() * t.bytesPerSec
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	t.last = now
	t.tokens -= n
	var wait time.Duration
	if t.tokens < 0 {
		wait = time.Duration(-t.tokens / t.bytesPerSec * float64(time.Second))
	}
	t.mu.Unlock()
	if wait > 0 {
		t.sleep(wait)
	}
}

// CountingWriter counts the bytes written through it; the harness uses it to
// measure per-technique network volume (GL ships only provenance data, BL
// ships entire source streams).
type CountingWriter struct {
	w io.Writer

	mu sync.Mutex
	n  int64
}

// NewCountingWriter wraps w.
func NewCountingWriter(w io.Writer) *CountingWriter { return &CountingWriter{w: w} }

var _ io.Writer = (*CountingWriter)(nil)

// Write implements io.Writer.
func (c *CountingWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.mu.Lock()
	c.n += int64(n)
	c.mu.Unlock()
	return n, err
}

// Bytes returns the number of bytes written so far.
func (c *CountingWriter) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
