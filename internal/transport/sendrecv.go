package transport

import (
	"context"
	"errors"
	"fmt"
	"io"

	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/query"
)

// Send transmits the tuples of a stream to another SPE instance (paper §2).
// Semantically it forwards tuples; in implementation it creates new memory
// objects on the receiving side, which is why §4.1 instruments the pair so
// received non-SOURCE tuples become REMOTE.
type Send struct {
	name   string
	in     *ops.Stream
	enc    Encoder
	closer io.Closer
	instr  core.Instrumenter
}

var _ ops.Operator = (*Send)(nil)

// NewSend returns a Send operator writing to enc; if closer is non-nil it is
// closed at end-of-stream so the peer's Decoder observes io.EOF.
func NewSend(name string, in *ops.Stream, enc Encoder, closer io.Closer, instr core.Instrumenter) *Send {
	return &Send{name: name, in: in, enc: enc, closer: closer, instr: instr}
}

// Name implements ops.Operator.
func (s *Send) Name() string { return s.name }

// Run implements ops.Operator. When the query runs batched (the input
// stream's batch size is above one) and the link's encoder supports it
// (both built-in codecs do), whole input batches are encoded in one wire
// frame, so the serialisation boundary amortises framing and flushing
// exactly like the in-process streams amortise channel operations. At
// batch size 1 the per-tuple wire format is unchanged from unbatched
// builds; the receiving peer must be configured with the same batch mode.
func (s *Send) Run(ctx context.Context) error {
	defer func() {
		if s.closer != nil {
			_ = s.closer.Close()
		}
	}()
	var batchEnc BatchEncoder
	// Key framing off the static batch-size limit, not the live size: the
	// adaptive controller may resize either end's streams independently at
	// runtime, and both link ends must agree on the wire format for the
	// whole connection.
	if s.in.BatchSizeLimit() > 1 {
		batchEnc, _ = s.enc.(BatchEncoder)
	}
	for {
		batch, ok, err := s.in.RecvBatch(ctx)
		if err != nil {
			return fmt.Errorf("send %q: %w", s.name, err)
		}
		if !ok {
			return nil
		}
		for _, t := range batch {
			if !core.IsHeartbeat(t) {
				s.instr.OnSend(t)
			}
		}
		if batchEnc != nil {
			if err := batchEnc.EncodeBatch(batch); err != nil {
				return fmt.Errorf("send %q: %w", s.name, err)
			}
			continue
		}
		for _, t := range batch {
			if err := s.enc.Encode(t); err != nil {
				return fmt.Errorf("send %q: %w", s.name, err)
			}
		}
	}
}

// Receive reconstructs tuples arriving from another SPE instance and feeds
// them into the local query (paper §2). Every reconstructed tuple passes
// through the instrumenter's OnReceive hook, which re-types non-SOURCE
// tuples as REMOTE (§4.1).
type Receive struct {
	name  string
	out   *ops.Stream
	dec   Decoder
	instr core.Instrumenter
}

var _ ops.Operator = (*Receive)(nil)

// NewReceive returns a Receive operator reading from dec.
func NewReceive(name string, out *ops.Stream, dec Decoder, instr core.Instrumenter) *Receive {
	return &Receive{name: name, out: out, dec: dec, instr: instr}
}

// Name implements ops.Operator.
func (r *Receive) Name() string { return r.name }

// Run implements ops.Operator. Batch frames (see Send) are decoded whole
// and re-published as one stream batch; each decoded batch is flushed
// immediately, since the next frame may be arbitrarily far away. The
// framing mode mirrors Send's: batch frames only when this instance runs
// batched (the output stream's batch-size limit is above one).
func (r *Receive) Run(ctx context.Context) error {
	defer r.out.CloseSend(ctx)
	var batchDec BatchDecoder
	// Mirrors Send: framing keys off the static limit so both ends agree
	// even when adaptive controllers resize live batch sizes mid-run.
	if r.out.BatchSizeLimit() > 1 {
		batchDec, _ = r.dec.(BatchDecoder)
	}
	for {
		var batch []core.Tuple
		if batchDec != nil {
			b, err := batchDec.DecodeBatch()
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err != nil {
				return fmt.Errorf("receive %q: %w", r.name, err)
			}
			batch = b
		} else {
			t, err := r.dec.Decode()
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err != nil {
				return fmt.Errorf("receive %q: %w", r.name, err)
			}
			batch = []core.Tuple{t}
		}
		for _, t := range batch {
			r.instr.OnReceive(t)
			if err := r.out.Send(ctx, t); err != nil {
				return fmt.Errorf("receive %q: %w", r.name, err)
			}
		}
		if err := r.out.Flush(ctx); err != nil {
			return fmt.Errorf("receive %q: %w", r.name, err)
		}
	}
}

// AddSend adds a Send node consuming from and writing to enc (closing
// closer, if non-nil, at end-of-stream). The node uses the builder's
// instrumenter.
func AddSend(b *query.Builder, name string, from *query.Node, enc Encoder, closer io.Closer) *query.Node {
	node := b.AddCustom(name, 1, 0, func(ins, outs []*ops.Stream) (ops.Operator, error) {
		return NewSend(name, ins[0], enc, closer, b.Instrumenter()), nil
	})
	b.Connect(from, node)
	return node
}

// AddReceive adds a Receive node producing tuples decoded from dec. The
// node uses the builder's instrumenter.
func AddReceive(b *query.Builder, name string, dec Decoder) *query.Node {
	return b.AddCustom(name, 0, 1, func(ins, outs []*ops.Stream) (ops.Operator, error) {
		return NewReceive(name, outs[0], dec, b.Instrumenter()), nil
	})
}

// Link is one directed tuple channel between two SPE instances: an encoder
// for the sending side and a decoder for the receiving side, over an
// in-memory serialising pipe by default, optionally throttled and counted.
type Link struct {
	Enc    Encoder
	Dec    Decoder
	Closer io.Closer
	// Count, when the link was built with WithCounting, reports the bytes
	// that crossed the link.
	Count *CountingWriter
	// Name labels the link in telemetry expositions (WithName); "" for
	// links nobody observes.
	Name string
}

// LinkOption configures NewLink.
type LinkOption func(*linkConfig)

type linkConfig struct {
	codec       Codec
	bufBytes    int
	bytesPerSec float64
	counting    bool
	name        string
}

// WithCodec selects the tuple codec (default GobCodec).
func WithCodec(c Codec) LinkOption { return func(l *linkConfig) { l.codec = c } }

// WithBuffer sets the pipe buffer size in bytes.
func WithBuffer(n int) LinkOption { return func(l *linkConfig) { l.bufBytes = n } }

// WithThrottle limits the link to bytesPerSec (0 = unlimited), modelling a
// constrained edge network.
func WithThrottle(bytesPerSec float64) LinkOption {
	return func(l *linkConfig) { l.bytesPerSec = bytesPerSec }
}

// WithCounting records the byte volume crossing the link.
func WithCounting() LinkOption { return func(l *linkConfig) { l.counting = true } }

// WithName labels the link for telemetry expositions (the harness and
// spe-node register per-link byte gauges under it).
func WithName(name string) LinkOption { return func(l *linkConfig) { l.name = name } }

// NewLink returns an in-memory serialising link between two SPE instances
// hosted by the same process. Tuples still cross a full encode/decode
// boundary, so provenance pointers die exactly as they would over TCP.
func NewLink(opts ...LinkOption) *Link {
	cfg := linkConfig{codec: GobCodec{}}
	for _, o := range opts {
		o(&cfg)
	}
	pipe := NewPipe(cfg.bufBytes)
	var w io.Writer = pipe
	link := &Link{Closer: pipe, Name: cfg.name}
	if cfg.counting {
		link.Count = NewCountingWriter(w)
		w = link.Count
	}
	if cfg.bytesPerSec > 0 {
		w = NewThrottledWriter(w, cfg.bytesPerSec)
	}
	link.Enc = cfg.codec.NewEncoder(w)
	link.Dec = cfg.codec.NewDecoder(pipe)
	return link
}

// NewConnLink returns a link over an established network connection (one
// direction: the caller decides which peer encodes and which decodes).
func NewConnLink(conn io.ReadWriteCloser, opts ...LinkOption) *Link {
	cfg := linkConfig{codec: GobCodec{}}
	for _, o := range opts {
		o(&cfg)
	}
	var w io.Writer = conn
	link := &Link{Closer: conn, Name: cfg.name}
	if cfg.counting {
		link.Count = NewCountingWriter(w)
		w = link.Count
	}
	if cfg.bytesPerSec > 0 {
		w = NewThrottledWriter(w, cfg.bytesPerSec)
	}
	link.Enc = cfg.codec.NewEncoder(w)
	link.Dec = cfg.codec.NewDecoder(conn)
	return link
}
