package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"genealog/internal/core"
)

// BinaryCodec is a hand-rolled, length-prefixed wire format that avoids
// gob's reflection and per-connection type descriptors. The Fig. 13
// experiments show serialisation dominating inter-process cost at high
// rates; BinaryCodec roughly quarters the per-tuple wire cost (see
// BenchmarkCodecComparison).
//
// Tuple types must implement WireTuple and be registered once with
// RegisterBinary under a stable, deployment-unique type tag.
//
// Frame layout (little endian):
//
//	u32 payload length (tag + meta + body)
//	u16 type tag
//	meta: u8 kind, i64 ts, i64 stim, u64 id, u16 annotation count, u64...
//	body: the tuple's MarshalWire output
type BinaryCodec struct{}

var _ Codec = BinaryCodec{}

// WireTuple is implemented by tuples that can serialise their payload
// (everything except the embedded core.Base, which the codec handles).
type WireTuple interface {
	core.Traceable
	// MarshalWire appends the payload encoding to buf.
	MarshalWire(buf []byte) ([]byte, error)
	// UnmarshalWire decodes the payload; data holds exactly the bytes
	// MarshalWire produced.
	UnmarshalWire(data []byte) error
}

// heartbeatTag is the reserved type tag for watermark markers.
const heartbeatTag = 0

type binaryRegistry struct {
	mu     sync.RWMutex
	byTag  map[uint16]func() WireTuple
	byType map[string]uint16
}

var binReg = &binaryRegistry{
	byTag:  make(map[uint16]func() WireTuple),
	byType: make(map[string]uint16),
}

// RegisterBinary registers a tuple type for BinaryCodec under tag (> 0).
// factory must return a fresh tuple of that type. Both peers of a link must
// register identical (tag, type) pairs.
func RegisterBinary(tag uint16, factory func() WireTuple) {
	if tag == heartbeatTag {
		panic("transport: binary tag 0 is reserved for heartbeats")
	}
	binReg.mu.Lock()
	defer binReg.mu.Unlock()
	name := fmt.Sprintf("%T", factory())
	if existing, dup := binReg.byType[name]; dup && existing != tag {
		panic(fmt.Sprintf("transport: %s already registered under tag %d", name, existing))
	}
	binReg.byTag[tag] = factory
	binReg.byType[name] = tag
}

func (r *binaryRegistry) tagOf(t core.Tuple) (uint16, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	tag, ok := r.byType[fmt.Sprintf("%T", t)]
	return tag, ok
}

func (r *binaryRegistry) newOf(tag uint16) (WireTuple, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.byTag[tag]
	if !ok {
		return nil, false
	}
	return f(), true
}

type binaryEncoder struct {
	w   *bufio.Writer
	buf []byte
}

type binaryDecoder struct {
	r   *bufio.Reader
	buf []byte
}

// NewEncoder implements Codec.
func (BinaryCodec) NewEncoder(w io.Writer) Encoder {
	return &binaryEncoder{w: bufio.NewWriter(w)}
}

// NewDecoder implements Codec.
func (BinaryCodec) NewDecoder(r io.Reader) Decoder {
	return &binaryDecoder{r: bufio.NewReader(r)}
}

// MaxBatchFrameTuples bounds the tuple count of one binary batch frame, a
// plausibility check mirroring the per-frame length bound. Callers that
// accept a user-facing batch size (the harness, genealog-bench) validate
// against it up front so a run cannot fail mid-flight at the first flush.
const MaxBatchFrameTuples = 1 << 20

// Encode implements Encoder.
func (e *binaryEncoder) Encode(t core.Tuple) error {
	if err := e.writeFrame(t); err != nil {
		return err
	}
	// Flush per tuple: peers must observe tuples promptly (streams, not
	// batch files). bufio still coalesces the header+payload writes.
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("transport: binary encode: %w", err)
	}
	return nil
}

// EncodeBatch implements BatchEncoder: a u32 tuple count followed by the
// tuples' individual frames, flushed once — the framing-amortisation the
// batched stream transport exists for.
func (e *binaryEncoder) EncodeBatch(batch []core.Tuple) error {
	if len(batch) == 0 {
		return nil
	}
	if len(batch) > MaxBatchFrameTuples {
		return fmt.Errorf("transport: binary encode: batch of %d exceeds frame bound %d", len(batch), MaxBatchFrameTuples)
	}
	var cntHdr [4]byte
	binary.LittleEndian.PutUint32(cntHdr[:], uint32(len(batch)))
	if _, err := e.w.Write(cntHdr[:]); err != nil {
		return fmt.Errorf("transport: binary encode: %w", err)
	}
	for _, t := range batch {
		if err := e.writeFrame(t); err != nil {
			return err
		}
	}
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("transport: binary encode: %w", err)
	}
	return nil
}

// writeFrame writes one tuple's length-prefixed frame without flushing.
func (e *binaryEncoder) writeFrame(t core.Tuple) error {
	e.buf = e.buf[:0]
	var tag uint16
	var wt WireTuple
	if core.IsHeartbeat(t) {
		tag = heartbeatTag
	} else {
		var ok bool
		tag, ok = binReg.tagOf(t)
		if !ok {
			return fmt.Errorf("transport: type %T not registered with RegisterBinary", t)
		}
		wt, ok = t.(WireTuple)
		if !ok {
			return fmt.Errorf("transport: type %T does not implement WireTuple", t)
		}
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, tag)
	e.buf = appendMeta(e.buf, core.MetaOf(t), t.Timestamp())
	if wt != nil {
		var err error
		e.buf, err = wt.MarshalWire(e.buf)
		if err != nil {
			return fmt.Errorf("transport: binary encode %T: %w", t, err)
		}
	}
	var lenHdr [4]byte
	binary.LittleEndian.PutUint32(lenHdr[:], uint32(len(e.buf)))
	if _, err := e.w.Write(lenHdr[:]); err != nil {
		return fmt.Errorf("transport: binary encode: %w", err)
	}
	if _, err := e.w.Write(e.buf); err != nil {
		return fmt.Errorf("transport: binary encode: %w", err)
	}
	return nil
}

// Decode implements Decoder.
func (d *binaryDecoder) Decode() (core.Tuple, error) {
	var lenHdr [4]byte
	if _, err := io.ReadFull(d.r, lenHdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("transport: binary decode: %w", err)
	}
	return d.readFrame(binary.LittleEndian.Uint32(lenHdr[:]))
}

// DecodeBatch implements BatchDecoder, reversing EncodeBatch.
func (d *binaryDecoder) DecodeBatch() ([]core.Tuple, error) {
	var cntHdr [4]byte
	if _, err := io.ReadFull(d.r, cntHdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("transport: binary decode: %w", err)
	}
	count := binary.LittleEndian.Uint32(cntHdr[:])
	if count == 0 || count > MaxBatchFrameTuples {
		return nil, fmt.Errorf("transport: binary decode: implausible batch count %d", count)
	}
	batch := make([]core.Tuple, 0, count)
	for i := uint32(0); i < count; i++ {
		var lenHdr [4]byte
		if _, err := io.ReadFull(d.r, lenHdr[:]); err != nil {
			return nil, fmt.Errorf("transport: binary decode: truncated batch: %w", err)
		}
		t, err := d.readFrame(binary.LittleEndian.Uint32(lenHdr[:]))
		if err != nil {
			return nil, err
		}
		batch = append(batch, t)
	}
	return batch, nil
}

// readFrame reads and decodes one tuple frame whose length prefix has
// already been consumed.
func (d *binaryDecoder) readFrame(n uint32) (core.Tuple, error) {
	if n < 2 || n > 1<<24 {
		return nil, fmt.Errorf("transport: binary decode: implausible frame length %d", n)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return nil, fmt.Errorf("transport: binary decode: truncated frame: %w", err)
	}
	tag := binary.LittleEndian.Uint16(d.buf)
	rest := d.buf[2:]
	if tag == heartbeatTag {
		hb := core.NewHeartbeat(0)
		if _, err := readMeta(rest, hb.ProvMeta()); err != nil {
			return nil, err
		}
		return hb, nil
	}
	t, ok := binReg.newOf(tag)
	if !ok {
		return nil, fmt.Errorf("transport: binary decode: unknown type tag %d", tag)
	}
	used, err := readMeta(rest, t.ProvMeta())
	if err != nil {
		return nil, err
	}
	if err := t.UnmarshalWire(rest[used:]); err != nil {
		return nil, fmt.Errorf("transport: binary decode %T: %w", t, err)
	}
	return t, nil
}

// appendMeta writes the wire-relevant Meta fields (same content as the gob
// path: kind, ts, stimulus, ID, baseline annotation; pointers are dropped).
func appendMeta(buf []byte, m *core.Meta, ts int64) []byte {
	var kind core.Kind
	var stim int64
	var id uint64
	var ann []uint64
	if m != nil {
		kind = m.Kind()
		stim = m.Stimulus()
		id = m.ID()
		ann = m.Annotation()
	}
	buf = append(buf, byte(kind))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ts))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(stim))
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ann)))
	for _, a := range ann {
		buf = binary.LittleEndian.AppendUint64(buf, a)
	}
	return buf
}

// readMeta parses what appendMeta wrote into m and returns the bytes
// consumed.
func readMeta(data []byte, m *core.Meta) (int, error) {
	const fixed = 1 + 8 + 8 + 8 + 2
	if len(data) < fixed {
		return 0, fmt.Errorf("transport: binary decode: meta truncated (%d bytes)", len(data))
	}
	m.SetKind(core.Kind(data[0]))
	m.SetTimestamp(int64(binary.LittleEndian.Uint64(data[1:])))
	m.SetStimulus(int64(binary.LittleEndian.Uint64(data[9:])))
	m.SetID(binary.LittleEndian.Uint64(data[17:]))
	nAnn := int(binary.LittleEndian.Uint16(data[25:]))
	used := fixed
	if nAnn > 0 {
		if len(data) < used+8*nAnn {
			return 0, fmt.Errorf("transport: binary decode: annotation truncated")
		}
		ann := make([]uint64, nAnn)
		for i := range ann {
			ann[i] = binary.LittleEndian.Uint64(data[used:])
			used += 8
		}
		m.SetAnnotation(ann)
	}
	return used, nil
}

// Wire-encoding helpers for WireTuple implementations.

// AppendInt32 appends a little-endian int32.
func AppendInt32(buf []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(buf, uint32(v))
}

// ReadInt32 reads a little-endian int32.
func ReadInt32(data []byte) (int32, []byte, error) {
	if len(data) < 4 {
		return 0, nil, fmt.Errorf("transport: wire data truncated (int32)")
	}
	return int32(binary.LittleEndian.Uint32(data)), data[4:], nil
}

// AppendInt64 appends a little-endian int64.
func AppendInt64(buf []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(v))
}

// ReadInt64 reads a little-endian int64.
func ReadInt64(data []byte) (int64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("transport: wire data truncated (int64)")
	}
	return int64(binary.LittleEndian.Uint64(data)), data[8:], nil
}

// AppendFloat64 appends a little-endian IEEE-754 float64.
func AppendFloat64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// ReadFloat64 reads a little-endian IEEE-754 float64.
func ReadFloat64(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("transport: wire data truncated (float64)")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), data[8:], nil
}

// AppendTupleWire encodes a registered tuple — tag, meta, payload, prefixed
// with its own length — so WireTuple implementations can nest tuples (the
// unfolded-stream Record carries its sink and originating tuples).
func AppendTupleWire(buf []byte, t core.Tuple) ([]byte, error) {
	if t == nil {
		return binary.LittleEndian.AppendUint32(buf, 0), nil
	}
	var tag uint16
	var wt WireTuple
	if !core.IsHeartbeat(t) {
		var ok bool
		tag, ok = binReg.tagOf(t)
		if !ok {
			return nil, fmt.Errorf("transport: nested type %T not registered with RegisterBinary", t)
		}
		wt, ok = t.(WireTuple)
		if !ok {
			return nil, fmt.Errorf("transport: nested type %T does not implement WireTuple", t)
		}
	}
	lenAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // patched below
	buf = binary.LittleEndian.AppendUint16(buf, tag)
	buf = appendMeta(buf, core.MetaOf(t), t.Timestamp())
	if wt != nil {
		var err error
		buf, err = wt.MarshalWire(buf)
		if err != nil {
			return nil, err
		}
	}
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	return buf, nil
}

// ReadTupleWire reverses AppendTupleWire, returning the tuple (nil for a
// nil marker) and the remaining bytes.
func ReadTupleWire(data []byte) (core.Tuple, []byte, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("transport: nested tuple truncated")
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if n == 0 {
		return nil, data, nil
	}
	if len(data) < int(n) {
		return nil, nil, fmt.Errorf("transport: nested tuple truncated (%d < %d)", len(data), n)
	}
	frame, rest := data[:n], data[n:]
	tag := binary.LittleEndian.Uint16(frame)
	body := frame[2:]
	if tag == heartbeatTag {
		hb := core.NewHeartbeat(0)
		if _, err := readMeta(body, hb.ProvMeta()); err != nil {
			return nil, nil, err
		}
		return hb, rest, nil
	}
	t, ok := binReg.newOf(tag)
	if !ok {
		return nil, nil, fmt.Errorf("transport: nested decode: unknown type tag %d", tag)
	}
	used, err := readMeta(body, t.ProvMeta())
	if err != nil {
		return nil, nil, err
	}
	if err := t.UnmarshalWire(body[used:]); err != nil {
		return nil, nil, err
	}
	return t, rest, nil
}
