package transport

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"genealog/internal/core"
	"genealog/internal/ops"
)

type wireTuple struct {
	core.Base
	Key string
	Val int64
}

func wt(ts int64, key string, val int64) *wireTuple {
	return &wireTuple{Base: core.NewBase(ts), Key: key, Val: val}
}

func (t *wireTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

var registerOnce sync.Once

func registerWire() {
	registerOnce.Do(func() { Register(&wireTuple{}) })
}

func TestGobCodecRoundTrip(t *testing.T) {
	registerWire()
	pipe := NewPipe(0)
	enc := GobCodec{}.NewEncoder(pipe)
	dec := GobCodec{}.NewDecoder(pipe)

	in := wt(42, "k", 7)
	in.SetStimulus(99)
	in.SetID(123)
	in.SetKind(core.KindAggregate)
	in.SetAnnotation([]uint64{1, 2, 3})
	in.SetU1(wt(0, "dangling", 0)) // must not survive the wire

	if err := enc.Encode(in); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	out, ok := got.(*wireTuple)
	if !ok {
		t.Fatalf("decoded %T, want *wireTuple", got)
	}
	if out.Timestamp() != 42 || out.Key != "k" || out.Val != 7 {
		t.Fatalf("payload lost: %+v", out)
	}
	m := out.ProvMeta()
	if m.Stimulus() != 99 || m.ID() != 123 || m.Kind() != core.KindAggregate {
		t.Fatalf("meta lost: stim=%d id=%d kind=%v", m.Stimulus(), m.ID(), m.Kind())
	}
	if len(m.Annotation()) != 3 {
		t.Fatalf("annotation lost: %v", m.Annotation())
	}
	if m.U1() != nil || m.U2() != nil || m.Next() != nil {
		t.Fatal("pointers must not survive serialisation")
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("expected EOF after close, got %v", err)
	}
}

func TestGobCodecManyTuples(t *testing.T) {
	registerWire()
	pipe := NewPipe(0)
	enc := GobCodec{}.NewEncoder(pipe)
	dec := GobCodec{}.NewDecoder(pipe)
	const n = 1000
	go func() {
		for i := 0; i < n; i++ {
			if err := enc.Encode(wt(int64(i), "k", int64(i*i))); err != nil {
				t.Error(err)
				break
			}
		}
		pipe.Close()
	}()
	for i := 0; i < n; i++ {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if got.Timestamp() != int64(i) || got.(*wireTuple).Val != int64(i*i) {
			t.Fatalf("tuple %d corrupted: %+v", i, got)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestPipeBlocksWhenFull(t *testing.T) {
	p := NewPipe(4)
	if _, err := p.Write([]byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := p.Write([]byte{5, 6}); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
		t.Fatal("write must block on a full pipe")
	case <-time.After(20 * time.Millisecond):
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(p, buf); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("write must resume after a read")
	}
}

func TestPipeCloseUnblocksEverything(t *testing.T) {
	p := NewPipe(1)
	if _, err := p.Write([]byte{9}); err != nil {
		t.Fatal(err)
	}
	writeErr := make(chan error, 1)
	go func() {
		_, err := p.Write([]byte{1})
		writeErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	p.Close()
	if err := <-writeErr; err != ErrPipeClosed {
		t.Fatalf("blocked write err = %v, want ErrPipeClosed", err)
	}
	// The buffered byte must still drain before EOF.
	buf := make([]byte, 1)
	if n, err := p.Read(buf); n != 1 || err != nil || buf[0] != 9 {
		t.Fatalf("read = (%d, %v, %v)", n, err, buf)
	}
	if _, err := p.Read(buf); err != io.EOF {
		t.Fatalf("read after drain = %v, want EOF", err)
	}
}

func TestSendReceiveOperators(t *testing.T) {
	registerWire()
	link := NewLink()
	instr := &core.Genealog{IDs: core.NewIDGen(1)}

	in := ops.NewStream("in", 16)
	src := wt(1, "k", 5)
	src.SetKind(core.KindSource)
	src.SetID(77)
	agg := wt(2, "k", 6)
	agg.SetKind(core.KindAggregate)
	agg.SetU1(src)
	go func() {
		in.Send(context.Background(), src)
		in.Send(context.Background(), agg)
		in.Close()
	}()

	out := ops.NewStream("out", 16)
	send := NewSend("send", in, link.Enc, link.Closer, instr)
	recv := NewReceive("recv", out, link.Dec, instr)

	errc := make(chan error, 2)
	go func() { errc <- send.Run(context.Background()) }()
	go func() { errc <- recv.Run(context.Background()) }()

	var got []core.Tuple
	for tup, ok, _ := out.Recv(context.Background()); ok; tup, ok, _ = out.Recv(context.Background()) {
		got = append(got, tup)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 {
		t.Fatalf("received %d tuples, want 2", len(got))
	}
	m0 := core.MetaOf(got[0])
	if m0.Kind() != core.KindSource || m0.ID() != 77 {
		t.Fatalf("source tuple must stay SOURCE with its ID: kind=%v id=%d", m0.Kind(), m0.ID())
	}
	m1 := core.MetaOf(got[1])
	if m1.Kind() != core.KindRemote {
		t.Fatalf("aggregate tuple must arrive as REMOTE, got %v", m1.Kind())
	}
	if m1.ID() == 0 {
		t.Fatal("sent tuples must carry an ID (OnSend assigns one if missing)")
	}
	if m1.U1() != nil {
		t.Fatal("pointers must not survive the link")
	}
}

func TestThrottledWriterLimitsRate(t *testing.T) {
	var slept time.Duration
	now := time.Unix(0, 0)
	tw := NewThrottledWriter(io.Discard, 1000) // 1000 B/s, burst 100 B
	tw.now = func() time.Time { return now }
	tw.sleep = func(d time.Duration) { slept += d; now = now.Add(d) }

	// First 100 bytes ride the burst; the next 1000 must cost ~1 s.
	if _, err := tw.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if slept < 900*time.Millisecond || slept > 1100*time.Millisecond {
		t.Fatalf("slept %v, want ~1s", slept)
	}
}

func TestThrottledWriterUnlimited(t *testing.T) {
	tw := NewThrottledWriter(io.Discard, 0)
	tw.sleep = func(time.Duration) { t.Fatal("unlimited writer must not sleep") }
	if _, err := tw.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
}

func TestCountingWriter(t *testing.T) {
	cw := NewCountingWriter(io.Discard)
	cw.Write(make([]byte, 10))
	cw.Write(make([]byte, 32))
	if cw.Bytes() != 42 {
		t.Fatalf("counted %d bytes, want 42", cw.Bytes())
	}
}

func TestLinkWithCountingAndThrottle(t *testing.T) {
	registerWire()
	link := NewLink(WithCounting(), WithThrottle(100e6), WithBuffer(1<<16))
	if err := link.Enc.Encode(wt(1, "k", 1)); err != nil {
		t.Fatal(err)
	}
	link.Closer.Close()
	if _, err := link.Dec.Decode(); err != nil {
		t.Fatal(err)
	}
	if link.Count.Bytes() == 0 {
		t.Fatal("counting link must record traffic")
	}
}
