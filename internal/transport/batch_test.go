package transport

import (
	"io"
	"math"
	"testing"

	"genealog/internal/core"
)

// encodeDecodeBatch round-trips one batch through a codec's batch framing
// over an in-memory pipe.
func encodeDecodeBatch(t testing.TB, codec Codec, batch []core.Tuple) []core.Tuple {
	t.Helper()
	pipe := NewPipe(0)
	enc := codec.NewEncoder(pipe).(BatchEncoder)
	dec := codec.NewDecoder(pipe).(BatchDecoder)
	if err := enc.EncodeBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := dec.DecodeBatch()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.DecodeBatch(); err != io.EOF {
		t.Fatalf("expected EOF after one batch, got %v", err)
	}
	return got
}

func TestGobBatchRoundTrip(t *testing.T) {
	registerWire()
	in := []core.Tuple{
		wt(1, "a", 10),
		core.NewHeartbeat(2),
		wt(3, "b", 30),
	}
	in[0].(*wireTuple).SetID(77)
	got := encodeDecodeBatch(t, GobCodec{}, in)
	if len(got) != len(in) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(in))
	}
	if v := got[0].(*wireTuple); v.Timestamp() != 1 || v.Key != "a" || v.Val != 10 || v.ProvMeta().ID() != 77 {
		t.Fatalf("tuple 0 mangled: %+v", v)
	}
	if !core.IsHeartbeat(got[1]) || got[1].Timestamp() != 2 {
		t.Fatalf("heartbeat mangled: %T@%d", got[1], got[1].Timestamp())
	}
	if v := got[2].(*wireTuple); v.Key != "b" || v.Val != 30 {
		t.Fatalf("tuple 2 mangled: %+v", v)
	}
}

func TestBinaryBatchRoundTrip(t *testing.T) {
	registerBinaryTest()
	in := []core.Tuple{
		&bwTuple{Base: core.NewBase(5), A: -1, B: 2.5},
		core.NewHeartbeat(6),
		&bwTuple{Base: core.NewBase(7), A: 42, B: -0.25},
	}
	got := encodeDecodeBatch(t, BinaryCodec{}, in)
	if len(got) != len(in) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(in))
	}
	if v := got[0].(*bwTuple); v.Timestamp() != 5 || v.A != -1 || v.B != 2.5 {
		t.Fatalf("tuple 0 mangled: %+v", v)
	}
	if !core.IsHeartbeat(got[1]) || got[1].Timestamp() != 6 {
		t.Fatalf("heartbeat mangled: %T@%d", got[1], got[1].Timestamp())
	}
	if v := got[2].(*bwTuple); v.A != 42 || v.B != -0.25 {
		t.Fatalf("tuple 2 mangled: %+v", v)
	}
}

func TestBinaryBatchRejectsImplausibleCount(t *testing.T) {
	registerBinaryTest()
	pipe := NewPipe(0)
	// A zero count is never produced by EncodeBatch.
	if _, err := pipe.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	dec := BinaryCodec{}.NewDecoder(pipe).(BatchDecoder)
	if _, err := dec.DecodeBatch(); err == nil {
		t.Fatal("zero-count batch frame must be rejected")
	}
}

// FuzzBatchRoundTrip fuzzes batch encode/decode round-trips through both
// codecs: arbitrary batch shapes (sizes, heartbeat positions, extreme field
// values) must come back exactly, and never crash the decoders.
func FuzzBatchRoundTrip(f *testing.F) {
	registerWire()
	registerBinaryTest()
	f.Add(uint8(1), uint8(0), int64(0), int64(0), uint64(0), int32(0), 0.0)
	f.Add(uint8(16), uint8(0xAA), int64(-1), int64(1<<62), uint64(math.MaxUint64), int32(math.MinInt32), math.Inf(1))
	f.Add(uint8(3), uint8(7), int64(math.MaxInt64), int64(-5), uint64(1), int32(-1), math.SmallestNonzeroFloat64)
	f.Fuzz(func(t *testing.T, nRaw, hbMask uint8, ts, stim int64, id uint64, a int32, b float64) {
		n := int(nRaw%16) + 1
		batch := make([]core.Tuple, 0, n)
		for i := 0; i < n; i++ {
			its := ts + int64(i)
			if hbMask&(1<<(i%8)) != 0 {
				batch = append(batch, core.NewHeartbeat(its))
				continue
			}
			tup := &bwTuple{Base: core.NewBase(its), A: a + int32(i), B: b}
			tup.SetStimulus(stim)
			tup.SetID(id)
			batch = append(batch, tup)
		}
		got := encodeDecodeBatch(t, BinaryCodec{}, batch)
		checkBatch(t, "binary", batch, got)

		// The gob path carries the same batch; heartbeats and payloads must
		// survive identically. (wireTuple is the registered gob test type.)
		gobBatch := make([]core.Tuple, len(batch))
		for i, tup := range batch {
			if core.IsHeartbeat(tup) {
				gobBatch[i] = tup
				continue
			}
			w := wt(tup.Timestamp(), "k", int64(tup.(*bwTuple).A))
			w.SetStimulus(stim)
			w.SetID(id)
			gobBatch[i] = w
		}
		gotGob := encodeDecodeBatch(t, GobCodec{}, gobBatch)
		checkBatch(t, "gob", gobBatch, gotGob)
	})
}

// checkBatch asserts a decoded batch matches the encoded one in shape,
// timestamps, heartbeat positions and meta fields.
func checkBatch(t *testing.T, codec string, want, got []core.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: decoded %d tuples, want %d", codec, len(got), len(want))
	}
	for i := range want {
		if got[i].Timestamp() != want[i].Timestamp() {
			t.Fatalf("%s: tuple %d ts = %d, want %d", codec, i, got[i].Timestamp(), want[i].Timestamp())
		}
		if core.IsHeartbeat(want[i]) != core.IsHeartbeat(got[i]) {
			t.Fatalf("%s: tuple %d heartbeat-ness flipped (%T)", codec, i, got[i])
		}
		if core.IsHeartbeat(want[i]) {
			continue
		}
		wm, gm := core.MetaOf(want[i]), core.MetaOf(got[i])
		if gm.Stimulus() != wm.Stimulus() || gm.ID() != wm.ID() {
			t.Fatalf("%s: tuple %d meta lost: stim %d/%d id %d/%d",
				codec, i, gm.Stimulus(), wm.Stimulus(), gm.ID(), wm.ID())
		}
		switch w := want[i].(type) {
		case *bwTuple:
			g := got[i].(*bwTuple)
			if g.A != w.A || (g.B != w.B && !(math.IsNaN(g.B) && math.IsNaN(w.B))) {
				t.Fatalf("%s: tuple %d payload lost: %+v vs %+v", codec, i, g, w)
			}
		case *wireTuple:
			g := got[i].(*wireTuple)
			if g.Key != w.Key || g.Val != w.Val {
				t.Fatalf("%s: tuple %d payload lost: %+v vs %+v", codec, i, g, w)
			}
		}
	}
}
