// Package transport implements the inter-process substrate of the paper's
// §6: Send and Receive operators that move tuples between SPE instances
// across a serialisation boundary, a gob-based codec, an in-memory
// serialising pipe, a TCP transport, and a token-bucket throttle that models
// constrained edge links (the paper's 100 Mbps switch).
//
// Crossing a Send/Receive pair is what destroys the in-process U1/U2/N
// pointers; the Receive re-types every non-SOURCE tuple as REMOTE, exactly
// the situation GeneaLog's multi-stream unfolder resolves.
package transport

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"genealog/internal/core"
)

// Encoder serialises tuples onto one connection.
type Encoder interface {
	Encode(core.Tuple) error
}

// Decoder deserialises tuples from one connection. It returns io.EOF once
// the peer has closed the stream.
type Decoder interface {
	Decode() (core.Tuple, error)
}

// BatchEncoder serialises whole tuple batches in one wire frame, amortising
// framing and flushing across the batch. A Send operator prefers it over
// per-tuple Encode when the link's encoder implements it; both peers of a
// link must then use the batch framing (Receive does so automatically).
type BatchEncoder interface {
	EncodeBatch([]core.Tuple) error
}

// BatchDecoder deserialises the frames a BatchEncoder produces. It returns
// io.EOF once the peer has closed the stream; returned batches are never
// empty.
type BatchDecoder interface {
	DecodeBatch() ([]core.Tuple, error)
}

// Codec builds per-connection encoders and decoders. Both built-in codecs
// (GobCodec, BinaryCodec) also implement BatchEncoder/BatchDecoder on the
// values they return.
type Codec interface {
	NewEncoder(w io.Writer) Encoder
	NewDecoder(r io.Reader) Decoder
}

// Register makes a concrete tuple type known to the gob codec. Call it once
// per application tuple type (typically from the workload package's
// RegisterWire function). The engine's own wire-crossing types (watermark
// heartbeats) are registered automatically on first use.
func Register(value any) {
	registerBuiltins()
	gob.Register(value)
}

var builtinsOnce sync.Once

func registerBuiltins() {
	builtinsOnce.Do(func() {
		gob.Register(&core.Heartbeat{})
	})
}

// GobCodec serialises tuples with encoding/gob. Tuple structs embed
// core.Meta, whose GobEncode keeps event time, stimulus, ID, kind and the
// baseline annotation — and drops the process-local U1/U2/N pointers.
type GobCodec struct{}

var _ Codec = GobCodec{}

type gobEncoder struct{ enc *gob.Encoder }

type gobDecoder struct{ dec *gob.Decoder }

// NewEncoder implements Codec.
func (GobCodec) NewEncoder(w io.Writer) Encoder {
	return &gobEncoder{enc: gob.NewEncoder(w)}
}

// NewDecoder implements Codec.
func (GobCodec) NewDecoder(r io.Reader) Decoder {
	return &gobDecoder{dec: gob.NewDecoder(r)}
}

func (e *gobEncoder) Encode(t core.Tuple) error {
	if err := e.enc.Encode(&t); err != nil {
		return fmt.Errorf("transport: gob encode %T: %w", t, err)
	}
	return nil
}

func (d *gobDecoder) Decode() (core.Tuple, error) {
	var t core.Tuple
	if err := d.dec.Decode(&t); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("transport: gob decode: %w", err)
	}
	return t, nil
}

// EncodeBatch implements BatchEncoder: one gob value per batch instead of
// one per tuple.
func (e *gobEncoder) EncodeBatch(batch []core.Tuple) error {
	if len(batch) == 0 {
		return nil
	}
	if err := e.enc.Encode(&batch); err != nil {
		return fmt.Errorf("transport: gob encode batch of %d: %w", len(batch), err)
	}
	return nil
}

// DecodeBatch implements BatchDecoder.
func (d *gobDecoder) DecodeBatch() ([]core.Tuple, error) {
	var batch []core.Tuple
	if err := d.dec.Decode(&batch); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("transport: gob decode batch: %w", err)
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("transport: gob decode batch: empty batch frame")
	}
	return batch, nil
}
