package transport

import (
	"context"
	"fmt"
	"net"
	"time"
)

// TCP transport: real multi-node deployments (cmd/spe-node) connect SPE
// instances over TCP exactly like the paper's Odroid testbed. Each directed
// stream uses one connection; the sender dials, the receiver listens.

// DialTimeout bounds one connection attempt.
const DialTimeout = 5 * time.Second

// DialRetry is the pause between connection attempts while the peer's
// listener is still coming up.
const DialRetry = 200 * time.Millisecond

// Listen accepts exactly one peer connection on addr and returns a link
// reading from it. It blocks until the peer connects or ctx is cancelled.
func Listen(ctx context.Context, addr string, opts ...LinkOption) (*Link, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	defer ln.Close()
	type result struct {
		conn net.Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		ch <- result{conn, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, fmt.Errorf("transport: accept on %s: %w", addr, r.err)
		}
		return NewConnLink(r.conn, opts...), nil
	case <-ctx.Done():
		return nil, fmt.Errorf("transport: accept on %s: %w", addr, ctx.Err())
	}
}

// Dial connects to a peer's listener, retrying until it is up or ctx is
// cancelled, and returns a link writing to it.
func Dial(ctx context.Context, addr string, opts ...LinkOption) (*Link, error) {
	conn, err := DialConn(ctx, addr)
	if err != nil {
		return nil, err
	}
	return NewConnLink(conn, opts...), nil
}

// DialConn connects to a peer's TCP listener, retrying until it is up or ctx
// is cancelled, and returns the raw connection. Dial wraps it in a tuple
// link; the remote provenance store (internal/provstore) layers its own
// record framing on top instead.
func DialConn(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: DialTimeout}
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("transport: dial %s: %w (last error: %v)", addr, ctx.Err(), err)
		case <-time.After(DialRetry):
		}
	}
}
