package transport

import (
	"context"
	"io"
	"testing"
	"time"
)

func TestTCPLinkRoundTrip(t *testing.T) {
	registerWire()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	addr := "127.0.0.1:17701"
	type accepted struct {
		link *Link
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		l, err := Listen(ctx, addr)
		ch <- accepted{l, err}
	}()
	sender, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	recv := <-ch
	if recv.err != nil {
		t.Fatal(recv.err)
	}

	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			if err := sender.Enc.Encode(wt(int64(i), "k", int64(i))); err != nil {
				t.Error(err)
				return
			}
		}
		sender.Closer.Close()
	}()
	for i := 0; i < n; i++ {
		got, err := recv.link.Dec.Decode()
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if got.Timestamp() != int64(i) {
			t.Fatalf("tuple %d has ts %d", i, got.Timestamp())
		}
	}
	if _, err := recv.link.Dec.Decode(); err != io.EOF {
		t.Fatalf("want EOF after sender close, got %v", err)
	}
}

func TestDialRespectsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	// Nothing listens on this port.
	if _, err := Dial(ctx, "127.0.0.1:17999"); err == nil {
		t.Fatal("dial to a dead port must fail once the context expires")
	}
}

func TestListenRespectsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := Listen(ctx, "127.0.0.1:17998"); err == nil {
		t.Fatal("accept with no peer must fail once the context expires")
	}
}
