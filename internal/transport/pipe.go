package transport

import (
	"errors"
	"io"
	"sync"
)

// ErrPipeClosed is returned by writes to a closed pipe.
var ErrPipeClosed = errors.New("transport: pipe closed")

// Pipe is an in-memory byte stream with an internal buffer: writes block
// once the buffer is full, reads block while it is empty, and reads observe
// io.EOF after Close once the buffer drains. Unlike io.Pipe it is buffered,
// so a Send operator is not lock-stepped with the matching Receive.
//
// Everything written still crosses a real serialisation boundary — a Pipe
// carries bytes, not object references — so intra-machine deployments of
// multiple SPE instances exercise the same REMOTE-tuple code paths as TCP.
type Pipe struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []byte
	max      int
	closed   bool
}

// DefaultPipeBuffer is the pipe buffer size used when none is given.
const DefaultPipeBuffer = 1 << 20

// NewPipe returns a pipe with the given buffer size (<= 0 selects
// DefaultPipeBuffer).
func NewPipe(size int) *Pipe {
	if size <= 0 {
		size = DefaultPipeBuffer
	}
	p := &Pipe{max: size}
	p.notFull = sync.NewCond(&p.mu)
	p.notEmpty = sync.NewCond(&p.mu)
	return p
}

var (
	_ io.WriteCloser = (*Pipe)(nil)
	_ io.Reader      = (*Pipe)(nil)
)

// Write implements io.Writer; it blocks while the buffer is full.
func (p *Pipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	written := 0
	for written < len(b) {
		for len(p.buf) >= p.max && !p.closed {
			p.notFull.Wait()
		}
		if p.closed {
			return written, ErrPipeClosed
		}
		n := p.max - len(p.buf)
		if rem := len(b) - written; n > rem {
			n = rem
		}
		p.buf = append(p.buf, b[written:written+n]...)
		written += n
		p.notEmpty.Broadcast()
	}
	return written, nil
}

// Read implements io.Reader; it blocks while the buffer is empty and the
// pipe is open.
func (p *Pipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 {
		if p.closed {
			return 0, io.EOF
		}
		p.notEmpty.Wait()
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	p.notFull.Broadcast()
	return n, nil
}

// Close implements io.Closer: readers drain the buffer and then observe
// io.EOF; blocked writers fail with ErrPipeClosed.
func (p *Pipe) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.notFull.Broadcast()
	p.notEmpty.Broadcast()
	return nil
}
