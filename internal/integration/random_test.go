// Package integration cross-checks the two provenance techniques on
// randomly generated query topologies: for any deterministic query built
// from the standard operators, GeneaLog's pointer traversal and the
// baseline's annotation lists must attribute identical source sets to
// identical sink tuples.
package integration

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"genealog/internal/baseline"
	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/query"
)

type rTuple struct {
	core.Base
	Key string
	Val int64
}

func rt(ts int64, key string, val int64) *rTuple {
	return &rTuple{Base: core.NewBase(ts), Key: key, Val: val}
}

func (t *rTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

func (t *rTuple) ApproxBytes() int { return 16 + len(t.Key) }

// segment is one randomly chosen building block of a pipeline.
type segment struct {
	kind int   // 0 filter, 1 map, 2 aggregate, 3 diamond, 4 self-join
	p1   int64 // parameter (modulus, window size, ...)
	p2   int64
}

// genSegments draws a random pipeline shape. The parameters are embedded in
// the spec so the two technique runs build *identical* queries.
func genSegments(rng *rand.Rand) []segment {
	n := 2 + rng.Intn(4)
	segs := make([]segment, n)
	for i := range segs {
		segs[i] = segment{
			kind: rng.Intn(5),
			p1:   2 + rng.Int63n(5),
			p2:   1 + rng.Int63n(4),
		}
	}
	return segs
}

// rKey is the partition key every pipeline tuple carries; the random maps
// preserve it, so stateless nodes can declare it (ShardKeyed) and let the
// planner hoist prefixes containing maps into the shard lanes.
func rKey(t core.Tuple) string { return t.(*rTuple).Key }

// buildPipeline appends the segments to b, returning the final node. The
// stateful segments (keyed aggregate, self-join) are shard-parallelised
// across parallelism instances (<= 1 keeps them serial).
func buildPipeline(b *query.Builder, src *query.Node, segs []segment, parallelism int) *query.Node {
	cur := src
	for i, s := range segs {
		id := strconv.Itoa(i)
		switch s.kind {
		case 0: // filter on value modulus
			mod := s.p1
			f := b.AddFilter("flt"+id, func(t core.Tuple) bool { return t.(*rTuple).Val%mod != 0 }).
				ShardKeyed(rKey)
			b.Connect(cur, f)
			cur = f
		case 1: // map transforming the value
			add := s.p1
			m := b.AddMap("map"+id, func(t core.Tuple, emit func(core.Tuple)) {
				v := t.(*rTuple)
				emit(rt(v.Timestamp(), v.Key, v.Val+add))
			}).ShardKeyed(rKey)
			b.Connect(cur, m)
			cur = m
		case 2: // keyed aggregate
			ws := s.p1 * 2
			wa := s.p2
			if wa > ws {
				wa = ws
			}
			a := b.AddAggregate("agg"+id, ops.AggregateSpec{
				WS:  ws,
				WA:  wa,
				Key: func(t core.Tuple) string { return t.(*rTuple).Key },
				Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
					var sum int64
					for _, x := range w {
						sum += x.(*rTuple).Val
					}
					return rt(0, key, sum)
				},
			}).Parallel(parallelism)
			b.Connect(cur, a)
			cur = a
		case 3: // diamond: multiplex -> 2 filters -> union
			mod := s.p1
			x := b.AddMultiplex("mux" + id)
			f1 := b.AddFilter("dl"+id, func(t core.Tuple) bool { return t.(*rTuple).Val%mod == 0 })
			f2 := b.AddFilter("dr"+id, func(t core.Tuple) bool { return t.(*rTuple).Val%mod != 0 })
			u := b.AddUnion("uni" + id)
			b.Connect(cur, x)
			b.Connect(x, f1)
			b.Connect(x, f2)
			b.Connect(f1, u)
			b.Connect(f2, u)
			cur = u
		case 4: // self-join: multiplex -> join on key within a window
			ws := s.p1
			x := b.AddMultiplex("jmux" + id)
			j := b.AddJoin("join"+id, ops.JoinSpec{
				WS:       ws,
				LeftKey:  func(t core.Tuple) string { return t.(*rTuple).Key },
				RightKey: func(t core.Tuple) string { return t.(*rTuple).Key },
				Predicate: func(l, r core.Tuple) bool {
					return l.(*rTuple).Key == r.(*rTuple).Key && l.Timestamp() < r.Timestamp()
				},
				Combine: func(l, r core.Tuple) core.Tuple {
					return rt(0, l.(*rTuple).Key, l.(*rTuple).Val*1000+r.(*rTuple).Val)
				},
			}).Parallel(parallelism)
			b.Connect(cur, x)
			b.ConnectPort(x, j, query.PortLeft)
			b.ConnectPort(x, j, query.PortRight)
			cur = j
		}
	}
	return cur
}

// sourceFor builds a deterministic source from the seed.
func sourceFor(seed int64, n int) ops.SourceFunc {
	return func(ctx context.Context, emit func(core.Tuple) error) error {
		rng := rand.New(rand.NewSource(seed))
		ts := int64(0)
		for i := 0; i < n; i++ {
			ts += rng.Int63n(3)
			k := "k" + strconv.Itoa(rng.Intn(3))
			if err := emit(rt(ts, k, rng.Int63n(50))); err != nil {
				return err
			}
		}
		return nil
	}
}

// canonicalize renders (sink, sources) pairs in a stable order.
func canonicalize(results []provenance.Result) []string {
	out := make([]string, 0, len(results))
	for _, r := range results {
		var srcs []string
		for _, s := range r.Sources {
			v := s.(*rTuple)
			srcs = append(srcs, fmt.Sprintf("%d/%s/%d", v.Timestamp(), v.Key, v.Val))
		}
		sort.Strings(srcs)
		sink := r.Sink.(*rTuple)
		out = append(out, fmt.Sprintf("%d/%s/%d<-%v", sink.Timestamp(), sink.Key, sink.Val, srcs))
	}
	sort.Strings(out)
	return out
}

func runGL(t *testing.T, seed int64, segs []segment, parallelism int, fusion bool) []provenance.Result {
	t.Helper()
	b := query.New("gl", query.WithInstrumenter(&core.Genealog{}), query.WithFusion(fusion))
	src := b.AddSource("src", sourceFor(seed, 150))
	last := buildPipeline(b, src, segs, parallelism)
	so, u := provenance.AddSU(b, "su", last, provenance.SUConfig{})
	b.Connect(so, b.AddSink("k", nil))
	var results []provenance.Result
	provenance.AddCollector(b, "prov", u, func(r provenance.Result) { results = append(results, r) })
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return results
}

func runBL(t *testing.T, seed int64, segs []segment, parallelism int, fusion bool) []provenance.Result {
	t.Helper()
	store := baseline.NewStore()
	instr := &baseline.Instrumenter{IDs: core.NewIDGen(1), Store: store}
	b := query.New("bl", query.WithInstrumenter(instr), query.WithFusion(fusion))
	src := b.AddSource("src", sourceFor(seed, 150))
	last := buildPipeline(b, src, segs, parallelism)
	var results []provenance.Result
	b.Connect(last, b.AddSink("k", func(tp core.Tuple) error {
		results = append(results, provenance.Result{
			Sink:    tp,
			Sources: baseline.Resolver{Store: store}.Resolve(tp),
		})
		return nil
	}))
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return results
}

// TestRandomTopologyEquivalence generates random operator pipelines and
// checks GL and BL produce identical sink tuples with identical provenance
// sets.
func TestRandomTopologyEquivalence(t *testing.T) {
	interesting := 0
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		segs := genSegments(rng)
		gl := canonicalize(runGL(t, seed, segs, 1, true))
		bl := canonicalize(runBL(t, seed, segs, 1, true))
		if len(gl) != len(bl) {
			t.Fatalf("seed %d (%v): GL %d results, BL %d", seed, segs, len(gl), len(bl))
		}
		for i := range gl {
			if gl[i] != bl[i] {
				t.Fatalf("seed %d (%v): provenance mismatch:\nGL: %s\nBL: %s",
					seed, segs, gl[i], bl[i])
			}
		}
		if len(gl) > 0 {
			interesting++
		}
	}
	if interesting < 20 {
		t.Fatalf("only %d/40 random topologies produced sink tuples; generator too restrictive", interesting)
	}
}

// runNP executes the pipeline without provenance and returns the sink
// tuples as provenance-free results.
func runNP(t *testing.T, seed int64, segs []segment, parallelism int, fusion bool) []provenance.Result {
	t.Helper()
	b := query.New("np", query.WithInstrumenter(core.Noop{}), query.WithFusion(fusion))
	src := b.AddSource("src", sourceFor(seed, 150))
	last := buildPipeline(b, src, segs, parallelism)
	var results []provenance.Result
	b.Connect(last, b.AddSink("k", func(tp core.Tuple) error {
		results = append(results, provenance.Result{Sink: tp})
		return nil
	}))
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return results
}

// TestRandomTopologyParallelismEquivalence is the shard-parallelism
// property test: on random operator pipelines, execution with every keyed
// stateful operator at Parallelism(4) must produce the same sink tuples —
// and, under GL and BL, the same traversed provenance sets — as serial
// execution, in all three modes.
func TestRandomTopologyParallelismEquivalence(t *testing.T) {
	runs := map[string]func(t *testing.T, seed int64, segs []segment, parallelism int, fusion bool) []provenance.Result{
		"NP": runNP, "GL": runGL, "BL": runBL,
	}
	interesting := 0
	for seed := int64(200); seed < 230; seed++ {
		rng := rand.New(rand.NewSource(seed))
		segs := genSegments(rng)
		// Chained self-joins multiply the output combinatorially (and with it
		// the runtime of six executions per seed); keep at most one per
		// pipeline, downgrading the rest to diamonds.
		joins := 0
		for i := range segs {
			if segs[i].kind == 4 {
				if joins++; joins > 1 {
					segs[i].kind = 3
				}
			}
		}
		for mode, run := range runs {
			serial := canonicalize(run(t, seed, segs, 1, true))
			parallel := canonicalize(run(t, seed, segs, 4, true))
			if len(serial) != len(parallel) {
				t.Fatalf("seed %d (%v) %s: serial %d results, parallel %d",
					seed, segs, mode, len(serial), len(parallel))
			}
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("seed %d (%v) %s: parallelism mismatch:\nserial:   %s\nparallel: %s",
						seed, segs, mode, serial[i], parallel[i])
				}
			}
			if mode == "NP" && len(serial) > 0 {
				interesting++
			}
		}
	}
	if interesting < 15 {
		t.Fatalf("only %d/30 random topologies produced sink tuples; generator too restrictive", interesting)
	}
}

// TestRandomTopologyDeterminism: the same random topology must produce an
// identical provenance report on every run.
func TestRandomTopologyDeterminism(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		rng := rand.New(rand.NewSource(seed))
		segs := genSegments(rng)
		first := canonicalize(runGL(t, seed, segs, 1, true))
		for rep := 0; rep < 3; rep++ {
			again := canonicalize(runGL(t, seed, segs, 1, true))
			if len(first) != len(again) {
				t.Fatalf("seed %d rep %d: %d vs %d results", seed, rep, len(first), len(again))
			}
			for i := range first {
				if first[i] != again[i] {
					t.Fatalf("seed %d rep %d: result %d differs", seed, rep, i)
				}
			}
		}
	}
}

// TestRandomTopologyFusionEquivalence is the physical planner's property
// test: on random operator pipelines, execution with operator fusion and
// shard-prefix replication must produce the same sink tuples — and, under
// GL and BL, the same traversed provenance sets — as the unfused plan, in
// all three modes, serial and at Parallelism(4) (where stateless prefixes
// hoist into the shard lanes via the declared ShardKey).
func TestRandomTopologyFusionEquivalence(t *testing.T) {
	runs := map[string]func(t *testing.T, seed int64, segs []segment, parallelism int, fusion bool) []provenance.Result{
		"NP": runNP, "GL": runGL, "BL": runBL,
	}
	interesting := 0
	for seed := int64(300); seed < 324; seed++ {
		rng := rand.New(rand.NewSource(seed))
		segs := genSegments(rng)
		joins := 0
		for i := range segs {
			if segs[i].kind == 4 {
				if joins++; joins > 1 {
					segs[i].kind = 3
				}
			}
		}
		for mode, run := range runs {
			for _, parallelism := range []int{1, 4} {
				unfused := canonicalize(run(t, seed, segs, parallelism, false))
				fused := canonicalize(run(t, seed, segs, parallelism, true))
				if len(unfused) != len(fused) {
					t.Fatalf("seed %d (%v) %s p%d: unfused %d results, fused %d",
						seed, segs, mode, parallelism, len(unfused), len(fused))
				}
				for i := range unfused {
					if unfused[i] != fused[i] {
						t.Fatalf("seed %d (%v) %s p%d: fusion mismatch:\nunfused: %s\nfused:   %s",
							seed, segs, mode, parallelism, unfused[i], fused[i])
					}
				}
				if mode == "NP" && parallelism == 1 && len(unfused) > 0 {
					interesting++
				}
			}
		}
	}
	if interesting < 12 {
		t.Fatalf("only %d/24 random topologies produced sink tuples; generator too restrictive", interesting)
	}
}
