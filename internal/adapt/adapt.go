// Package adapt closes the feedback loop between the telemetry counters
// (internal/telemetry) and the streams' live batch size (ops.SetBatchSize):
// an AIMD controller samples queue occupancy and batch fill per stream at a
// fixed cadence and resizes each stream independently — growing toward the
// configured maximum while its queue is deep and its batches run full
// (throughput phases, where batching amortises per-tuple framework cost),
// and shrinking toward the minimum while occupancy is low (latency phases,
// where a waiting batch is pure delay).
//
// The controller only changes how tuples are grouped, never what is
// delivered: batch boundaries carry no meaning by the stream contract, so
// adaptive and fixed-batch executions of the same query are byte-identical
// at the sinks (the harness's equivalence grid pins this).
package adapt

import (
	"context"
	"time"

	"genealog/internal/ops"
	"genealog/internal/telemetry"
)

// Config is the controller law's knobs. The zero value is not useful;
// start from Defaults.
type Config struct {
	// Min and Max bound every stream's batch size. Shrinking stops at Min
	// (1 = effectively unbatched); growth stops at Max, which also becomes
	// each stream's static batch-size limit at build time.
	Min, Max int
	// Interval is the sampling cadence of the controller loop.
	Interval time.Duration
	// Step is the additive increase per tick while growing.
	Step int
	// DeepQueue is the queue-occupancy fraction at or above which the
	// stream is considered congested; LowQueue the fraction at or below
	// which it is considered idle. Between the two the size holds.
	DeepQueue, LowQueue float64
	// FullFill is the batch fill ratio that, together with a deep queue,
	// triggers growth: a deep queue of partial batches means the producer
	// is flush-bound, and a bigger batch would not help.
	FullFill float64
}

// Defaults returns the controller configuration used when callers specify
// only the [min, max] bounds.
func Defaults(min, max int) Config {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	step := max / 8
	if step < 1 {
		step = 1
	}
	return Config{
		Min:       min,
		Max:       max,
		Interval:  2 * time.Millisecond,
		Step:      step,
		DeepQueue: 0.5,
		LowQueue:  0.125,
		FullFill:  0.75,
	}
}

// Sample is one tick's observation of a stream: Occupancy is buffered
// tuples over capacity, Fill is published slots over capacity-at-flush for
// the batches flushed since the previous tick (0 when none were).
type Sample struct {
	Occupancy float64
	Fill      float64
}

// Decide is the pure controller law: the next batch size for a stream
// currently at cur, given one sample. Additive increase while the queue is
// deep and batches run full; multiplicative (halving) decrease while the
// queue is low — including while the stream is idle, so a burst's end
// drains the batch size back down and the next lull runs unbatched.
func Decide(cfg Config, cur int, s Sample) int {
	switch {
	case s.Occupancy >= cfg.DeepQueue && s.Fill >= cfg.FullFill:
		cur += cfg.Step
	case s.Occupancy <= cfg.LowQueue:
		cur /= 2
	}
	if cur < cfg.Min {
		cur = cfg.Min
	}
	if cur > cfg.Max {
		cur = cfg.Max
	}
	return cur
}

// Target is one stream under control. Stats must be the StreamStats
// attached to the stream (the controller reads its flush counters for the
// fill signal); queries without a telemetry registry attach a private one.
type Target struct {
	Name   string
	Stream *ops.Stream
	Stats  *telemetry.StreamStats
}

// Controller drives every target stream of one query. It is built at query
// build time and runs on its own goroutine for the life of the query run.
type Controller struct {
	cfg     Config
	targets []Target
	// Per-target cumulative counters at the previous tick, for the fill
	// delta. Indexed in step with targets; touched only by the controller
	// goroutine.
	lastSlots []int64
	lastCap   []int64
}

// NewController returns a controller over the given streams. Each target's
// batch size is clamped into [cfg.Min, cfg.Max] immediately so the run
// starts inside the controller's bounds.
func NewController(cfg Config, targets []Target) *Controller {
	c := &Controller{
		cfg:       cfg,
		targets:   targets,
		lastSlots: make([]int64, len(targets)),
		lastCap:   make([]int64, len(targets)),
	}
	for _, t := range targets {
		t.Stream.SetBatchSize(t.Stream.BatchSize())
	}
	return c
}

// Tick samples every target once and applies the law. Exported so tests
// drive the controller deterministically against scripted counters.
func (c *Controller) Tick() {
	for i, t := range c.targets {
		var s Sample
		if qc := t.Stream.QueueCap(); qc > 0 {
			s.Occupancy = float64(t.Stream.QueueLen()) / float64(qc)
		}
		slots, caps := t.Stats.SlotsOut(), t.Stats.CapSlotsOut()
		if dc := caps - c.lastCap[i]; dc > 0 {
			s.Fill = float64(slots-c.lastSlots[i]) / float64(dc)
		}
		c.lastSlots[i], c.lastCap[i] = slots, caps
		if next := Decide(c.cfg, t.Stream.BatchSize(), s); next != t.Stream.BatchSize() {
			t.Stream.SetBatchSize(next)
		}
	}
}

// Run ticks at the configured cadence until ctx is cancelled.
func (c *Controller) Run(ctx context.Context) {
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			c.Tick()
		}
	}
}
