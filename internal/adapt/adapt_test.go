package adapt

import (
	"context"
	"testing"

	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/telemetry"
)

type testTuple struct{ core.Base }

func (t *testTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

func tt(ts int64) core.Tuple { return &testTuple{Base: core.NewBase(ts)} }

// TestDecide pins the controller law on scripted samples: additive growth
// only under a deep queue of full batches, halving under a low queue, hold
// in between, and hard clamping at both bounds.
func TestDecide(t *testing.T) {
	cfg := Config{Min: 1, Max: 64, Step: 8, DeepQueue: 0.5, LowQueue: 0.125, FullFill: 0.75}
	cases := []struct {
		name string
		cur  int
		s    Sample
		want int
	}{
		{"grow on deep full queue", 8, Sample{Occupancy: 0.6, Fill: 0.8}, 16},
		{"hold on deep partial batches", 8, Sample{Occupancy: 0.6, Fill: 0.5}, 8},
		{"shrink on low occupancy", 8, Sample{Occupancy: 0.05, Fill: 1}, 4},
		{"shrink while idle", 8, Sample{}, 4},
		{"hold mid occupancy", 8, Sample{Occupancy: 0.3, Fill: 1}, 8},
		{"growth clamps at max", 60, Sample{Occupancy: 1, Fill: 1}, 64},
		{"shrink clamps at min", 1, Sample{}, 1},
		{"odd size shrinks past half", 3, Sample{}, 1},
	}
	for _, c := range cases {
		if got := Decide(cfg, c.cur, c.s); got != c.want {
			t.Errorf("%s: Decide(%d, %+v) = %d, want %d", c.name, c.cur, c.s, got, c.want)
		}
	}
}

// TestControllerScriptedTrace drives a controller over a real stream
// through a scripted burst: deep full traffic grows the batch size, a
// stall (deep queue, no fresh flushes) holds it, and a drained queue
// shrinks it back to the minimum.
func TestControllerScriptedTrace(t *testing.T) {
	ctx := context.Background()
	s := ops.NewBatchedStream("src->op", 16, 8)
	s.SetBatchSize(1)
	st := new(telemetry.StreamStats)
	s.SetTelemetry(st)
	cfg := Config{Min: 1, Max: 8, Step: 2, DeepQueue: 0.5, LowQueue: 0.125, FullFill: 0.75}
	c := NewController(cfg, []Target{{Name: s.Name(), Stream: s, Stats: st}})

	// Burst: 12 tuples at batch size 1 publish 12 full batches and leave
	// the queue at 12/16 occupancy.
	for i := 1; i <= 12; i++ {
		if err := s.Send(ctx, tt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Tick()
	if got := s.BatchSize(); got != 3 {
		t.Fatalf("after deep full tick: batch size = %d, want 1+Step = 3", got)
	}

	// Stall: the queue is still deep but nothing flushed since the last
	// tick, so the fill delta is 0 — growth must not continue on stale
	// cumulative counters.
	c.Tick()
	if got := s.BatchSize(); got != 3 {
		t.Fatalf("after stalled tick: batch size = %d, want held at 3", got)
	}

	// Drain: consuming everything drops occupancy to 0; successive ticks
	// halve the size down to Min and no further.
	for i := 0; i < 12; i++ {
		if _, ok, err := s.Recv(ctx); !ok || err != nil {
			t.Fatalf("recv %d: ok=%v err=%v", i, ok, err)
		}
	}
	c.Tick()
	if got := s.BatchSize(); got != 1 {
		t.Fatalf("after drain tick: batch size = %d, want halved to 1", got)
	}
	c.Tick()
	if got := s.BatchSize(); got != 1 {
		t.Fatalf("after idle tick at floor: batch size = %d, want clamped at Min 1", got)
	}
}

// TestControllerRespectsStreamLimit pins that growth never pushes a stream
// past its static batch-size limit, whatever Max the config claims.
func TestControllerRespectsStreamLimit(t *testing.T) {
	ctx := context.Background()
	s := ops.NewBatchedStream("src->op", 64, 4) // limit 4
	st := new(telemetry.StreamStats)
	s.SetTelemetry(st)
	cfg := Config{Min: 1, Max: 32, Step: 16, DeepQueue: 0.5, LowQueue: 0.125, FullFill: 0.75}
	c := NewController(cfg, []Target{{Name: s.Name(), Stream: s, Stats: st}})

	for i := 1; i <= 40; i++ {
		if err := s.Send(ctx, tt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Tick()
	if got := s.BatchSize(); got != 4 {
		t.Fatalf("batch size = %d, want clamped at stream limit 4", got)
	}
}

// TestDefaults pins the derived knobs callers rely on when they configure
// only the bounds.
func TestDefaults(t *testing.T) {
	cfg := Defaults(0, 64)
	if cfg.Min != 1 || cfg.Max != 64 || cfg.Step != 8 {
		t.Errorf("Defaults(0, 64) = min %d max %d step %d, want 1/64/8", cfg.Min, cfg.Max, cfg.Step)
	}
	if cfg.Interval <= 0 {
		t.Error("default interval must be positive")
	}
	small := Defaults(1, 4)
	if small.Step != 1 {
		t.Errorf("Defaults(1, 4) step = %d, want floor of 1", small.Step)
	}
	inverted := Defaults(8, 2)
	if inverted.Max != 8 {
		t.Errorf("Defaults(8, 2) max = %d, want raised to min 8", inverted.Max)
	}
}
