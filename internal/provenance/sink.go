package provenance

import (
	"context"
	"fmt"
	"sort"

	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/query"
)

// Result is the assembled provenance of one sink tuple.
type Result struct {
	// Sink is the sink tuple (as carried by the unfolded stream's records).
	Sink core.Tuple
	// Sources are the originating tuples, deduplicated, in first-seen order.
	Sources []core.Tuple
}

// Collector consumes an unfolded stream (SU output intra-process, MU output
// inter-process) and assembles one Result per sink tuple. Records of one
// sink tuple may interleave with records of other sink tuples (the MU's
// Join emits matches as both sides arrive), so the collector groups by sink
// key and flushes when the watermark passes the record's horizon, or at
// end-of-stream.
type Collector struct {
	// OnResult receives each assembled Result. It is invoked from the
	// collector's operator goroutine.
	OnResult func(Result)
	// Store, when non-nil, durably ingests each assembled Result (before
	// OnResult observes it) and receives the unfolded stream's watermark
	// progress for retention. AddCollector wires it from the builder's
	// query.WithProvenanceStore option.
	Store query.ProvenanceStore
	// Horizon is how far (in event time) past a sink tuple's timestamp the
	// collector waits for more of its records before flushing. Use the MU
	// window (plus any upstream delay) inter-process; 0 is safe
	// intra-process, where each sink tuple's records arrive contiguously
	// from the single SU.
	Horizon int64

	groups map[any]*group
	order  []any // first-seen order, for deterministic flushing
}

type group struct {
	sink    core.Tuple
	ts      int64
	seen    map[any]struct{}
	sources []core.Tuple
}

// AddCollector adds a provenance sink node consuming the unfolded stream
// produced by from, and returns the collector for inspection after the run.
func AddCollector(b *query.Builder, name string, from *query.Node, onResult func(Result)) *Collector {
	return AddCollectorHorizon(b, name, from, 0, onResult)
}

// AddCollectorHorizon is AddCollector with an explicit flush horizon.
func AddCollectorHorizon(b *query.Builder, name string, from *query.Node, horizon int64, onResult func(Result)) *Collector {
	c := &Collector{OnResult: onResult, Store: b.ProvenanceStore(), Horizon: horizon}
	node := b.AddCustom(name, 1, 0, func(ins, outs []*ops.Stream) (ops.Operator, error) {
		return newCollectorOp(name, ins[0], c), nil
	})
	b.Connect(from, node)
	return c
}

// Add ingests one record. A store ingestion failure (triggered by a flush)
// is returned so the collector's operator can fail the query.
func (c *Collector) Add(rec *Record) error {
	if c.groups == nil {
		c.groups = make(map[any]*group)
	}
	key := rec.sinkKey()
	g := c.groups[key]
	if g == nil {
		g = &group{sink: rec.Sink, ts: rec.Timestamp(), seen: make(map[any]struct{})}
		c.groups[key] = g
		c.order = append(c.order, key)
	}
	ok := rec.origKey()
	if _, dup := g.seen[ok]; dup {
		return nil
	}
	g.seen[ok] = struct{}{}
	g.sources = append(g.sources, rec.Orig)
	// Flush every group whose horizon the watermark has passed.
	return c.flushBefore(rec.Timestamp() - c.Horizon)
}

// flushBefore emits and removes groups with sink timestamp < ts, in
// first-seen order. An emit failure is fatal to the query (the collector's
// operator propagates it); the failed group and every later one are kept
// only so the collector's state stays consistent — nothing re-emits them,
// and Store.Ingest is not idempotent, so this is not a retry contract.
func (c *Collector) flushBefore(ts int64) error {
	kept := c.order[:0]
	var err error
	for _, key := range c.order {
		g := c.groups[key]
		if err != nil || g.ts >= ts {
			kept = append(kept, key)
			continue
		}
		if err = c.emit(g); err != nil {
			kept = append(kept, key)
			continue
		}
		delete(c.groups, key)
	}
	c.order = kept
	return err
}

// Flush emits every pending group (end-of-stream).
func (c *Collector) Flush() error {
	for i, key := range c.order {
		if err := c.emit(c.groups[key]); err != nil {
			c.order = c.order[i:]
			return err
		}
		delete(c.groups, key)
	}
	c.order = c.order[:0]
	return nil
}

func (c *Collector) emit(g *group) error {
	if c.Store != nil {
		if _, err := c.Store.Ingest(g.sink, g.sources); err != nil {
			return err
		}
	}
	if c.OnResult != nil {
		c.OnResult(Result{Sink: g.sink, Sources: g.sources})
	}
	return nil
}

// collectorOp adapts a Collector to the Operator interface: a sink consuming
// an unfolded stream of *Record tuples.
type collectorOp struct {
	name string
	in   *ops.Stream
	c    *Collector
}

func newCollectorOp(name string, in *ops.Stream, c *Collector) *collectorOp {
	return &collectorOp{name: name, in: in, c: c}
}

var _ ops.Operator = (*collectorOp)(nil)

// Name implements ops.Operator.
func (o *collectorOp) Name() string { return o.name }

// Run implements ops.Operator.
func (o *collectorOp) Run(ctx context.Context) error {
	for {
		t, ok, err := o.in.Recv(ctx)
		if err != nil {
			return fmt.Errorf("provenance collector %q: %w", o.name, err)
		}
		if !ok {
			if err := o.c.Flush(); err != nil {
				return fmt.Errorf("provenance collector %q: %w", o.name, err)
			}
			return nil
		}
		if core.IsHeartbeat(t) {
			// Watermark progress: flush every group whose horizon passed,
			// then let the store retire what can no longer be referenced.
			// The store's watermark trails by the flush horizon — groups
			// within it are still pending here.
			if err := o.c.flushBefore(t.Timestamp() - o.c.Horizon); err != nil {
				return fmt.Errorf("provenance collector %q: %w", o.name, err)
			}
			if o.c.Store != nil {
				o.c.Store.Advance(t.Timestamp() - o.c.Horizon)
			}
			continue
		}
		rec, isRec := t.(*Record)
		if !isRec {
			return fmt.Errorf("provenance collector %q: unexpected tuple type %T on unfolded stream", o.name, t)
		}
		if err := o.c.Add(rec); err != nil {
			return fmt.Errorf("provenance collector %q: %w", o.name, err)
		}
	}
}

// SortSourcesByTs orders a Result's sources by (event time, ID) — handy for
// stable assertions and reports.
func SortSourcesByTs(r *Result) {
	sort.SliceStable(r.Sources, func(i, j int) bool {
		a, b := r.Sources[i], r.Sources[j]
		if a.Timestamp() != b.Timestamp() {
			return a.Timestamp() < b.Timestamp()
		}
		am, bm := core.MetaOf(a), core.MetaOf(b)
		if am != nil && bm != nil {
			return am.ID() < bm.ID()
		}
		return false
	})
}

// String renders a result compactly for logs and examples.
func (r Result) String() string {
	return fmt.Sprintf("sink@%d <- %d source tuple(s)", r.Sink.Timestamp(), len(r.Sources))
}
