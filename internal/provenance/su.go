package provenance

import (
	"time"

	"genealog/internal/core"
	"genealog/internal/query"
)

// SUConfig configures a single-stream unfolder.
//
// Inter-process deployments need no extra configuration here: the GL
// instrumenter assigns the ID meta-attribute when a tuple is created, and
// Multiplex copies inherit it, so the delivering tuple the SU unfolds and
// the sibling copy the Send serialises always carry the same ID.
type SUConfig struct {
	// OnTraversal, when non-nil, observes the duration of each contribution
	// graph traversal (the Fig. 14 measurement).
	OnTraversal func(d time.Duration, graphSize int)
	// Now supplies the traversal timer clock; defaults to time.Now.
	Now func() time.Time
}

// AddSU adds a single-stream unfolder (paper §5, Fig. 5) in front of a Sink
// or Send. Following Fig. 5B it is composed of standard operators only: a
// Multiplex duplicates the delivering stream and a Map unfolds one branch by
// running the contribution-graph traversal (Listing 1) on every tuple.
//
//	from ──► Multiplex ──► (caller connects to Sink / Send)   ["so" branch]
//	             └───────► Map(findProvenance) ──► unfolded   ["u" branch]
//
// AddSU connects from to the Multiplex and the Multiplex to the Map. It
// returns the Multiplex node (connect it to the Sink or Send to obtain the
// SO stream — the pass-through copy) and the Map node (its output is the
// unfolded stream U; connect it to a ProvenanceSink, a Send, or an MU).
func AddSU(b *query.Builder, name string, from *query.Node, cfg SUConfig) (so, u *query.Node) {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	mux := b.AddMultiplex(name + ".mux")
	unfold := b.AddMap(name+".unfold", func(t core.Tuple, emit func(core.Tuple)) {
		var sinkID uint64
		if m := core.MetaOf(t); m != nil {
			sinkID = m.ID()
		}
		begin := now()
		originating := core.FindProvenance(t)
		if cfg.OnTraversal != nil {
			cfg.OnTraversal(now().Sub(begin), len(originating))
		}
		for _, o := range originating {
			rec := &Record{
				Base:   core.NewBase(t.Timestamp()),
				SinkID: sinkID,
				OrigTs: o.Timestamp(),
				Sink:   t,
				Orig:   o,
			}
			if om := core.MetaOf(o); om != nil {
				rec.OrigID = om.ID()
				rec.OrigKind = om.Kind()
			}
			emit(rec)
		}
	})
	b.Connect(from, mux)
	b.Connect(mux, unfold)
	return mux, unfold
}
