package provenance

import (
	"fmt"
	"sync"

	"genealog/internal/core"
	"genealog/internal/transport"
)

// tagRecord is the Record's binary wire tag (100-109 reserved for the
// provenance package).
const tagRecord uint16 = 100

var _ transport.WireTuple = (*Record)(nil)

// MarshalWire implements transport.WireTuple: the record scalars followed by
// the nested sink and originating tuples.
func (r *Record) MarshalWire(buf []byte) ([]byte, error) {
	buf = transport.AppendInt64(buf, int64(r.SinkID))
	buf = transport.AppendInt64(buf, int64(r.OrigID))
	buf = transport.AppendInt64(buf, r.OrigTs)
	buf = append(buf, byte(r.OrigKind))
	var err error
	if buf, err = transport.AppendTupleWire(buf, r.Sink); err != nil {
		return nil, fmt.Errorf("provenance: record sink: %w", err)
	}
	if buf, err = transport.AppendTupleWire(buf, r.Orig); err != nil {
		return nil, fmt.Errorf("provenance: record origin: %w", err)
	}
	return buf, nil
}

// UnmarshalWire implements transport.WireTuple.
func (r *Record) UnmarshalWire(data []byte) error {
	var err error
	var v int64
	if v, data, err = transport.ReadInt64(data); err != nil {
		return err
	}
	r.SinkID = uint64(v)
	if v, data, err = transport.ReadInt64(data); err != nil {
		return err
	}
	r.OrigID = uint64(v)
	if r.OrigTs, data, err = transport.ReadInt64(data); err != nil {
		return err
	}
	if len(data) < 1 {
		return fmt.Errorf("provenance: record wire data truncated")
	}
	r.OrigKind = core.Kind(data[0])
	data = data[1:]
	if r.Sink, data, err = transport.ReadTupleWire(data); err != nil {
		return fmt.Errorf("provenance: record sink: %w", err)
	}
	if r.Orig, _, err = transport.ReadTupleWire(data); err != nil {
		return fmt.Errorf("provenance: record origin: %w", err)
	}
	return nil
}

var registerWireOnce sync.Once

// RegisterWire registers the Record with both transport codecs. Safe to
// call multiple times; workload packages must additionally register their
// own tuple types (they are nested inside records).
func RegisterWire() {
	registerWireOnce.Do(func() {
		transport.Register(&Record{})
		transport.RegisterBinary(tagRecord, func() transport.WireTuple { return &Record{} })
	})
}
