// Package provenance implements GeneaLog's provenance operators: the
// single-stream unfolder SU (paper §5) and the multi-stream unfolder MU
// (paper §6), both composed from the standard operators of internal/ops —
// establishing the paper's challenge C3 — plus the unfolded-stream record
// type and a provenance sink that assembles per-sink-tuple provenance sets.
package provenance

import (
	"genealog/internal/core"
)

// Record is one tuple of an unfolded (delivering) stream (paper Defs. 5.1
// and 6.2): a delivering tuple paired with one of its originating tuples.
// The record's own event time is the delivering tuple's, keeping unfolded
// streams timestamp-sorted.
//
// SinkID and OrigID carry the ID meta-attributes used by the inter-process
// algorithm (t'.IDO in Def. 6.2 is OrigID; the MU matches it against
// upstream records' SinkID). They are zero in intra-process deployments,
// where the Sink and Orig references suffice.
type Record struct {
	core.Base
	// SinkID is the delivering tuple's unique ID (0 intra-process).
	SinkID uint64
	// OrigID is the originating tuple's unique ID (t'.IDO; 0 intra-process).
	OrigID uint64
	// OrigTs is the originating tuple's event time (t'.tsO).
	OrigTs int64
	// OrigKind is the originating tuple's Type meta-attribute: SOURCE, or
	// REMOTE when the originating tuple was produced by another SPE
	// instance and still needs MU resolution.
	OrigKind core.Kind
	// Sink is the delivering tuple.
	Sink core.Tuple
	// Orig is the originating tuple.
	Orig core.Tuple
}

var _ core.Traceable = (*Record)(nil)
var _ core.Cloneable = (*Record)(nil)

// CloneTuple implements core.Cloneable so records can pass through
// provenance-instrumented Multiplex operators (inside the MU).
func (r *Record) CloneTuple() core.Tuple {
	cp := *r
	cp.ResetProvenance()
	return &cp
}

// sinkKey identifies the sink tuple a record belongs to: the ID when the
// inter-process algorithm assigned one, the reference otherwise.
func (r *Record) sinkKey() any {
	if r.SinkID != 0 {
		return r.SinkID
	}
	return r.Sink
}

// origKey identifies the originating tuple for deduplication.
func (r *Record) origKey() any {
	if r.OrigID != 0 {
		return r.OrigID
	}
	return r.Orig
}
