package provenance

import (
	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/query"
)

// MUConfig configures a multi-stream unfolder.
type MUConfig struct {
	// Window is the MU Join's window size: the sum of the window sizes of
	// the stateful operators deployed at the SPE instance producing the
	// derived stream (paper §6.1). It bounds how long upstream records are
	// retained before they can no longer match.
	Window int64
}

// AddMU adds a multi-stream unfolder (paper §6, Def. 6.4) assembled from the
// standard operators exactly as in Fig. 8:
//
//	upstreams ──► Union ─────────────────────────┐
//	derived ──► Multiplex ─► Filter(¬SOURCE) ──► Join ─► Union ─► out
//	                 └─────► Filter(SOURCE) ────────────►│
//
// Each derived-stream record whose originating tuple is of type SOURCE is
// forwarded unchanged; every other record is replaced by the upstream
// records whose SinkID matches its OrigID, substituting the true
// originating tuples for the REMOTE placeholder (Def. 6.4).
//
// derived and upstreams must produce *Record tuples (unfolded streams).
// AddMU returns the node producing the MU's output stream.
func AddMU(b *query.Builder, name string, derived *query.Node, upstreams []*query.Node, cfg MUConfig) *query.Node {
	// Upstream side: a Union merges multiple upstream unfolded streams
	// deterministically (the Union is pass-through for a single upstream).
	up := b.AddUnion(name + ".up")
	for _, u := range upstreams {
		b.Connect(u, up)
	}

	// Derived side: split SOURCE records from records needing resolution.
	mux := b.AddMultiplex(name + ".mux")
	b.Connect(derived, mux)
	needJoin := b.AddFilter(name+".remote", func(t core.Tuple) bool {
		return t.(*Record).OrigKind != core.KindSource
	})
	passThrough := b.AddFilter(name+".local", func(t core.Tuple) bool {
		return t.(*Record).OrigKind == core.KindSource
	})
	b.Connect(mux, needJoin)
	b.Connect(mux, passThrough)

	join := b.AddJoin(name+".join", ops.JoinSpec{
		WS: cfg.Window,
		Predicate: func(l, r core.Tuple) bool {
			return l.(*Record).OrigID == r.(*Record).SinkID
		},
		Combine: func(l, r core.Tuple) core.Tuple {
			d, u := l.(*Record), r.(*Record)
			return &Record{
				Base:     core.NewBase(d.Timestamp()),
				SinkID:   d.SinkID,
				Sink:     d.Sink,
				OrigID:   u.OrigID,
				OrigTs:   u.OrigTs,
				OrigKind: u.OrigKind,
				Orig:     u.Orig,
			}
		},
	})
	b.ConnectPort(needJoin, join, query.PortLeft)
	b.ConnectPort(up, join, query.PortRight)

	out := b.AddUnion(name + ".out")
	b.Connect(join, out)
	b.Connect(passThrough, out)
	return out
}
