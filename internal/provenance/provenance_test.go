package provenance

import (
	"context"
	"sync"
	"testing"
	"time"

	"genealog/internal/core"
	"genealog/internal/ops"
	"genealog/internal/query"
	"genealog/internal/transport"
)

type evTuple struct {
	core.Base
	Key string
	Val int64
}

func ev(ts int64, key string, val int64) *evTuple {
	return &evTuple{Base: core.NewBase(ts), Key: key, Val: val}
}

func (t *evTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

func mustAdd(t *testing.T, c *Collector, r *Record) {
	t.Helper()
	if err := c.Add(r); err != nil {
		t.Fatalf("Collector.Add: %v", err)
	}
}

func mustFlush(t *testing.T, c *Collector) {
	t.Helper()
	if err := c.Flush(); err != nil {
		t.Fatalf("Collector.Flush: %v", err)
	}
}

var registerOnce sync.Once

func registerWire() {
	registerOnce.Do(func() {
		transport.Register(&evTuple{})
		transport.Register(&Record{})
	})
}

func countFold(w []core.Tuple, start, end int64, key string) core.Tuple {
	return ev(0, key, int64(len(w)))
}

func TestSUIntraProcessProvenance(t *testing.T) {
	b := query.New("su", query.WithInstrumenter(&core.Genealog{}))
	src := b.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
		for i := 0; i < 12; i++ {
			if err := emit(ev(int64(i), "k", int64(i))); err != nil {
				return err
			}
		}
		return nil
	})
	agg := b.AddAggregate("agg", ops.AggregateSpec{WS: 4, WA: 4, Fold: countFold})
	b.Connect(src, agg)

	so, u := AddSU(b, "su", agg, SUConfig{})
	var sunk []core.Tuple
	k := b.AddSink("k", func(tp core.Tuple) error { sunk = append(sunk, tp); return nil })
	b.Connect(so, k)
	var results []Result
	AddCollector(b, "prov", u, func(r Result) { results = append(results, r) })

	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sunk) != 3 {
		t.Fatalf("sink got %d tuples, want 3 windows", len(sunk))
	}
	if len(results) != 3 {
		t.Fatalf("collector got %d results, want 3", len(results))
	}
	for i, r := range results {
		if len(r.Sources) != 4 {
			t.Fatalf("result %d has %d sources, want 4", i, len(r.Sources))
		}
		SortSourcesByTs(&r)
		for j, s := range r.Sources {
			wantTs := int64(i*4 + j)
			if s.Timestamp() != wantTs {
				t.Fatalf("result %d source %d ts = %d, want %d", i, j, s.Timestamp(), wantTs)
			}
			if core.MetaOf(s).Kind() != core.KindSource {
				t.Fatalf("originating tuple not SOURCE: %v", core.MetaOf(s).Kind())
			}
		}
	}
}

func TestSUTraversalObserver(t *testing.T) {
	b := query.New("su-obs", query.WithInstrumenter(&core.Genealog{}))
	src := b.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
		for i := 0; i < 3; i++ {
			if err := emit(ev(int64(i), "k", 1)); err != nil {
				return err
			}
		}
		return nil
	})
	var calls, sizeSum int
	so, u := AddSU(b, "su", src, SUConfig{
		OnTraversal: func(d time.Duration, n int) {
			calls++
			sizeSum += n
			if d < 0 {
				t.Errorf("negative traversal duration %v", d)
			}
		},
	})
	b.Connect(so, b.AddSink("k", nil))
	AddCollector(b, "prov", u, nil)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("OnTraversal called %d times, want 3", calls)
	}
	if sizeSum != 3 {
		t.Fatalf("traversed graph sizes sum = %d, want 3 (one source each)", sizeSum)
	}
}

func TestRecordCloneTuple(t *testing.T) {
	orig := ev(1, "s", 1)
	r := &Record{Base: core.NewBase(5), SinkID: 9, OrigID: 3, OrigTs: 1, OrigKind: core.KindSource, Sink: ev(5, "k", 0), Orig: orig}
	r.SetKind(core.KindMap)
	cp := r.CloneTuple().(*Record)
	if cp == r {
		t.Fatal("clone must be a new object")
	}
	if cp.Kind() != core.KindNone {
		t.Fatal("clone must reset provenance meta")
	}
	if cp.SinkID != 9 || cp.OrigID != 3 || cp.Orig != core.Tuple(orig) {
		t.Fatal("clone must keep the record payload")
	}
}

func TestCollectorDeduplicatesByOrigKey(t *testing.T) {
	var results []Result
	c := &Collector{OnResult: func(r Result) { results = append(results, r) }}
	sink := ev(10, "sink", 0)
	s1, s2 := ev(1, "a", 0), ev(2, "b", 0)
	mustAdd(t, c, &Record{Base: core.NewBase(10), SinkID: 100, OrigID: 1, Sink: sink, Orig: s1})
	mustAdd(t, c, &Record{Base: core.NewBase(10), SinkID: 100, OrigID: 2, Sink: sink, Orig: s2})
	mustAdd(t, c, &Record{Base: core.NewBase(10), SinkID: 100, OrigID: 1, Sink: sink, Orig: s1}) // dup
	mustFlush(t, c)
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	if len(results[0].Sources) != 2 {
		t.Fatalf("got %d sources, want 2 (dedup)", len(results[0].Sources))
	}
}

func TestCollectorGroupsInterleavedSinks(t *testing.T) {
	var results []Result
	c := &Collector{OnResult: func(r Result) { results = append(results, r) }, Horizon: 100}
	sa, sb := ev(10, "a", 0), ev(11, "b", 0)
	mustAdd(t, c, &Record{Base: core.NewBase(10), SinkID: 1, OrigID: 11, Sink: sa, Orig: ev(1, "x", 0)})
	mustAdd(t, c, &Record{Base: core.NewBase(11), SinkID: 2, OrigID: 21, Sink: sb, Orig: ev(2, "y", 0)})
	mustAdd(t, c, &Record{Base: core.NewBase(10), SinkID: 1, OrigID: 12, Sink: sa, Orig: ev(3, "z", 0)})
	mustFlush(t, c)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if len(results[0].Sources) != 2 || len(results[1].Sources) != 1 {
		t.Fatalf("grouping wrong: %v / %v", results[0], results[1])
	}
}

func TestCollectorHorizonFlushes(t *testing.T) {
	var results []Result
	c := &Collector{OnResult: func(r Result) { results = append(results, r) }, Horizon: 5}
	mustAdd(t, c, &Record{Base: core.NewBase(0), SinkID: 1, OrigID: 1, Sink: ev(0, "a", 0), Orig: ev(0, "x", 0)})
	if len(results) != 0 {
		t.Fatal("group must not flush before the horizon")
	}
	// Watermark 10 passes 0+5: the first group must flush.
	mustAdd(t, c, &Record{Base: core.NewBase(10), SinkID: 2, OrigID: 2, Sink: ev(10, "b", 0), Orig: ev(9, "y", 0)})
	if len(results) != 1 {
		t.Fatalf("got %d results after horizon, want 1", len(results))
	}
	mustFlush(t, c)
	if len(results) != 2 {
		t.Fatalf("got %d results after Flush, want 2", len(results))
	}
}

// TestMUInterProcessProvenance deploys the Fig. 7 topology in miniature:
//
//	SPE1: Source -> Filter -> SU -> Send(main) / Send(U1)
//	SPE2: Receive -> Aggregate -> SU -> Sink / Send(U2, derived)
//	SPE3: Receive(U1), Receive(U2) -> MU -> Collector
//
// and checks the collector reconstructs exactly the source tuples of every
// sink tuple's windows, across two serialisation boundaries.
func TestMUInterProcessProvenance(t *testing.T) {
	registerWire()

	mainLink := transport.NewLink()
	u1Link := transport.NewLink()
	u2Link := transport.NewLink()

	const ws = 4

	// SPE instance 1 (source instance).
	b1 := query.New("spe1", query.WithInstrumenter(&core.Genealog{IDs: core.NewIDGen(1)}))
	src := b1.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
		for i := 0; i < 12; i++ {
			if err := emit(ev(int64(i), "k", int64(i))); err != nil {
				return err
			}
		}
		return nil
	})
	flt := b1.AddFilter("flt", func(tp core.Tuple) bool { return tp.(*evTuple).Val%2 == 0 })
	b1.Connect(src, flt)
	so1, u1 := AddSU(b1, "su1", flt, SUConfig{})
	transport.AddSend(b1, "send-main", so1, mainLink.Enc, mainLink.Closer)
	transport.AddSend(b1, "send-u1", u1, u1Link.Enc, u1Link.Closer)
	q1, err := b1.Build()
	if err != nil {
		t.Fatal(err)
	}

	// SPE instance 2 (sink instance).
	b2 := query.New("spe2", query.WithInstrumenter(&core.Genealog{IDs: core.NewIDGen(2)}))
	rcv := transport.AddReceive(b2, "recv-main", mainLink.Dec)
	agg := b2.AddAggregate("agg", ops.AggregateSpec{WS: ws, WA: ws, Fold: countFold})
	b2.Connect(rcv, agg)
	so2, u2 := AddSU(b2, "su2", agg, SUConfig{})
	var sunk []core.Tuple
	k := b2.AddSink("k", func(tp core.Tuple) error { sunk = append(sunk, tp); return nil })
	b2.Connect(so2, k)
	transport.AddSend(b2, "send-u2", u2, u2Link.Enc, u2Link.Closer)
	q2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}

	// SPE instance 3 (provenance instance).
	b3 := query.New("spe3", query.WithInstrumenter(&core.Genealog{IDs: core.NewIDGen(3)}))
	up := transport.AddReceive(b3, "recv-u1", u1Link.Dec)
	derived := transport.AddReceive(b3, "recv-u2", u2Link.Dec)
	mu := AddMU(b3, "mu", derived, []*query.Node{up}, MUConfig{Window: ws})
	var results []Result
	AddCollectorHorizon(b3, "prov", mu, ws, func(r Result) { results = append(results, r) })
	q3, err := b3.Build()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for _, q := range []*query.Query{q1, q2, q3} {
		wg.Add(1)
		go func(q *query.Query) {
			defer wg.Done()
			errs <- q.Run(context.Background())
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Even values 0..10 filtered through; windows [0,4) {0,2}, [4,8) {4,6},
	// [8,12) {8,10}.
	if len(sunk) != 3 {
		t.Fatalf("sink got %d tuples, want 3", len(sunk))
	}
	if len(results) != 3 {
		t.Fatalf("collector got %d results, want 3", len(results))
	}
	want := [][]int64{{0, 2}, {4, 6}, {8, 10}}
	for i, r := range results {
		SortSourcesByTs(&r)
		if len(r.Sources) != len(want[i]) {
			t.Fatalf("result %d: %d sources, want %d", i, len(r.Sources), len(want[i]))
		}
		for j, s := range r.Sources {
			st, ok := s.(*evTuple)
			if !ok {
				t.Fatalf("result %d source %d: %T, want *evTuple", i, j, s)
			}
			if st.Timestamp() != want[i][j] || st.Val != want[i][j] {
				t.Fatalf("result %d source %d = ts %d val %d, want %d", i, j, st.Timestamp(), st.Val, want[i][j])
			}
			if core.MetaOf(s).Kind() != core.KindSource {
				t.Fatalf("MU output source kind = %v, want SOURCE", core.MetaOf(s).Kind())
			}
		}
	}
}
