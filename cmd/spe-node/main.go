// Command spe-node runs one SPE instance of a distributed GeneaLog
// deployment over real TCP, reproducing the paper's three-node Odroid
// testbed with three OS processes (possibly on three machines).
//
// Instance roles follow the paper's Figs. 7, 9C, 10C, 11C:
//
//	role 1 — Source + query stage 1 (+ SU per delivering stream under GL)
//	role 2 — query stage 2 + Sink (+ SU producing the derived stream)
//	role 3 — provenance node (GL: MU + collector; BL: source store + join)
//
// Every directed link uses one TCP connection with a fixed port offset from
// -base-port on the receiving node's host. Start role 3 first, then role 2,
// then role 1 (senders retry while listeners come up, so any order works in
// practice).
//
// Example (three shells, one query):
//
//	spe-node -query Q1 -mode GL -role 3 -base-port 7400
//	spe-node -query Q1 -mode GL -role 2 -base-port 7400 -spe3 127.0.0.1
//	spe-node -query Q1 -mode GL -role 1 -base-port 7400 -spe2 127.0.0.1 -spe3 127.0.0.1
//
// A fourth role runs a shared provenance store node: `-store-listen` (no
// -role) accepts ingestion from any number of deployments' provenance nodes
// (role 3 with `-store`) and answers live Backward/Forward/Stats queries for
// the merged store (cmd/genealog-prov -connect):
//
//	spe-node -store-listen :7432 -store-path prov.glprov
//	spe-node -query Q1 -mode GL -role 3 -base-port 7400 -store 127.0.0.1:7432
//
// The store node runs until SIGINT/SIGTERM (or -timeout) and then flushes
// and closes its file log; a restarted node reopens the log — keeping every
// acknowledged entry — and continues serving and ingesting.
//
// Every role — SPE instances and the store node alike — additionally serves
// live telemetry with `-telemetry-listen addr`: Prometheus text at /metrics,
// a JSON snapshot at /telemetry.json (the feed of cmd/genealog-top), pprof
// at /debug/pprof and expvar at /debug/vars. SPE roles expose per-operator
// throughput, queue occupancy and watermark lag plus per-link byte gauges;
// the store node exposes the merged store's ingest/retire/dedup counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"genealog/internal/baseline"
	"genealog/internal/clickstream"
	"genealog/internal/core"
	"genealog/internal/harness"
	"genealog/internal/linearroad"
	"genealog/internal/provenance"
	"genealog/internal/provstore"
	"genealog/internal/smartgrid"
	"genealog/internal/telemetry"
	"genealog/internal/transport"
)

// Port offsets from -base-port, per link. The listener is always the
// receiving role.
const (
	portMain    = 0  // role 2 listens: main stream i at base+portMain+i
	portU1      = 10 // role 3 listens: upstream unfolded stream i
	portDerived = 20 // role 3 listens: derived stream
	portSources = 30 // role 3 listens: BL source stream
	portSinks   = 31 // role 3 listens: BL annotated sink stream
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spe-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spe-node", flag.ContinueOnError)
	queryID := fs.String("query", "Q1", "Q1 | Q2 | Q3 | Q4 | Q5")
	mode := fs.String("mode", "GL", "NP | GL | BL")
	role := fs.Int("role", 0, "SPE instance role: 1, 2 or 3")
	basePort := fs.Int("base-port", 7400, "base TCP port for the deployment's links")
	spe2 := fs.String("spe2", "127.0.0.1", "host of SPE instance 2 (used by role 1)")
	spe3 := fs.String("spe3", "127.0.0.1", "host of SPE instance 3 (used by roles 1 and 2)")
	scale := fs.Int("scale", 1, "workload scale multiplier")
	codec := fs.String("codec", "gob", "link codec: gob | binary (all roles must agree)")
	adaptive := fs.Bool("adaptive", false, "adaptive batch sizing: an AIMD controller resizes this instance's stream batch sizes live (all roles must agree so link framing matches)")
	adaptiveMax := fs.Int("adaptive-max", harness.DefaultAdaptiveMaxBatch, "adaptive batch sizing: largest batch size the controller may grow to")
	storeAddr := fs.String("store", "", "role 3: stream assembled provenance to the store node at this address (spe-node -store-listen)")
	storeListen := fs.String("store-listen", "", "run as a shared provenance store node on this address instead of an SPE role")
	storePath := fs.String("store-path", "", "store node: durable file log path (created, or reopened for appends; empty = in-memory)")
	storeHorizon := fs.Int64("store-horizon", 0, "store node: retention horizon recorded in a newly created file log")
	telemetryListen := fs.String("telemetry-listen", "", "serve /metrics, /telemetry.json, /debug/pprof and /debug/vars on this address (empty = off)")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall deadline (a store node defaults to none: it serves until SIGINT/SIGTERM)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	timeoutExplicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "timeout" {
			timeoutExplicit = true
		}
	})
	if *storeListen != "" {
		if *role != 0 {
			return fmt.Errorf("-store-listen runs a store node, not an SPE role; drop -role %d", *role)
		}
		// A serving role has no natural end: without an explicit -timeout the
		// node runs until SIGINT/SIGTERM instead of silently exiting after
		// the SPE roles' default deadline.
		ctx := context.Background()
		if timeoutExplicit {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		return runStoreNode(ctx, *storeListen, *storePath, *storeHorizon, *telemetryListen)
	}
	if *storePath != "" || *storeHorizon != 0 {
		return errors.New("-store-path and -store-horizon configure a store node; they need -store-listen")
	}
	if *storeAddr != "" && *role != 3 {
		return fmt.Errorf("-store streams the provenance node's ingestion; it needs -role 3, not %d", *role)
	}

	o := harness.Options{
		Query:      harness.QueryID(*queryID),
		Mode:       harness.Mode(*mode),
		Deployment: harness.Inter,
		LR: linearroad.Config{
			Cars: 50 * *scale, Steps: 300, StopEvery: 10, StopDuration: 6,
			AccidentEvery: 40, Seed: 42,
		},
		SG: smartgrid.Config{
			Meters: 50 * *scale, Days: 30, BlackoutEvery: 7,
			BlackoutMeters: smartgrid.BlackoutMeterThreshold + 1,
			AnomalyEvery:   5, AnomalyValue: 300, Seed: 7,
		},
		CS: clickstream.Config{
			Users: 50 * *scale, Windows: 60, HotEvery: 5,
			Pages: 100, Seed: 23,
		},
		AdaptiveBatch:    *adaptive,
		AdaptiveMaxBatch: *adaptiveMax,
	}
	nMain, err := harness.MainLinkCount(o.Query)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var linkOpts []transport.LinkOption
	switch *codec {
	case "gob":
	case "binary":
		linkOpts = append(linkOpts, transport.WithCodec(transport.BinaryCodec{}))
	default:
		return fmt.Errorf("unknown codec %q (want gob or binary)", *codec)
	}
	var telem *telemetry.Registry
	if *telemetryListen != "" {
		telem = telemetry.NewRegistry()
		o.Telemetry = telem
		tsrv, err := telem.Listen(*telemetryListen)
		if err != nil {
			return err
		}
		defer tsrv.Close()
		fmt.Printf("telemetry on http://%s (/metrics, /telemetry.json, /debug/pprof)\n", tsrv.Addr())
		// Counted links feed the per-link byte gauges below.
		linkOpts = append(linkOpts, transport.WithCounting())
	}

	addr := func(host string, off int) string { return fmt.Sprintf("%s:%d", host, *basePort+off) }
	observe := func(l *transport.Link) *transport.Link {
		if telem != nil && l.Count != nil {
			count := l.Count
			telem.RegisterGauge("genealog_link_bytes",
				[]telemetry.Label{{Name: "link", Value: l.Name}},
				func() float64 { return float64(count.Bytes()) })
		}
		return l
	}
	listen := func(name string, off int) (*transport.Link, error) {
		l, err := transport.Listen(ctx, addr("0.0.0.0", off), append(linkOpts, transport.WithName(name))...)
		if err != nil {
			return nil, err
		}
		return observe(l), nil
	}
	dial := func(name, host string, off int) (*transport.Link, error) {
		l, err := transport.Dial(ctx, addr(host, off), append(linkOpts, transport.WithName(name))...)
		if err != nil {
			return nil, err
		}
		return observe(l), nil
	}

	links := harness.InterLinks{}
	hooks := harness.InterHooks{}
	begin := time.Now()
	var srcTuples, sinkTuples, provResults int

	switch *role {
	case 1:
		for i := 0; i < nMain; i++ {
			l, err := dial(fmt.Sprintf("main-%d", i), *spe2, portMain+i)
			if err != nil {
				return err
			}
			links.Main = append(links.Main, l)
		}
		switch o.Mode {
		case harness.ModeGL:
			for i := 0; i < nMain; i++ {
				l, err := dial(fmt.Sprintf("u1-%d", i), *spe3, portU1+i)
				if err != nil {
					return err
				}
				links.U1 = append(links.U1, l)
			}
		case harness.ModeBL:
			if links.Sources, err = dial("sources", *spe3, portSources); err != nil {
				return err
			}
		}
		hooks.OnSourceEmit = func(core.Tuple) { srcTuples++ }
		q, err := harness.BuildSPE1(o, links, hooks)
		if err != nil {
			return err
		}
		if err := q.Run(ctx); err != nil {
			return err
		}
		fmt.Printf("spe1: %d source tuples shipped in %v\n", srcTuples, time.Since(begin).Round(time.Millisecond))
	case 2:
		for i := 0; i < nMain; i++ {
			l, err := listen(fmt.Sprintf("main-%d", i), portMain+i)
			if err != nil {
				return err
			}
			links.Main = append(links.Main, l)
		}
		switch o.Mode {
		case harness.ModeGL:
			if links.Derived, err = dial("derived", *spe3, portDerived); err != nil {
				return err
			}
		case harness.ModeBL:
			if links.Sinks, err = dial("sinks", *spe3, portSinks); err != nil {
				return err
			}
		}
		hooks.OnSinkTuple = func(t core.Tuple) {
			sinkTuples++
			fmt.Printf("sink tuple ts=%d\n", t.Timestamp())
		}
		q, err := harness.BuildSPE2(o, links, hooks)
		if err != nil {
			return err
		}
		if err := q.Run(ctx); err != nil {
			return err
		}
		fmt.Printf("spe2: %d sink tuples in %v\n", sinkTuples, time.Since(begin).Round(time.Millisecond))
	case 3:
		if o.Mode == harness.ModeNP {
			return fmt.Errorf("NP deployments have no provenance node (role 3)")
		}
		switch o.Mode {
		case harness.ModeGL:
			for i := 0; i < nMain; i++ {
				l, err := listen(fmt.Sprintf("u1-%d", i), portU1+i)
				if err != nil {
					return err
				}
				links.U1 = append(links.U1, l)
			}
			if links.Derived, err = listen("derived", portDerived); err != nil {
				return err
			}
		case harness.ModeBL:
			if links.Sources, err = listen("sources", portSources); err != nil {
				return err
			}
			if links.Sinks, err = listen("sinks", portSinks); err != nil {
				return err
			}
			hooks.Store = baseline.NewStore()
		}
		hooks.OnProvenance = func(r provenance.Result) {
			provResults++
			fmt.Printf("provenance: sink ts=%d <- %d source tuple(s)\n", r.Sink.Timestamp(), len(r.Sources))
		}
		var remoteStore *provstore.Store
		if *storeAddr != "" {
			hz, err := harness.StoreHorizon(o.Query)
			if err != nil {
				return err
			}
			if remoteStore, err = provstore.Connect(ctx, *storeAddr, provstore.Options{Horizon: hz}); err != nil {
				return err
			}
			hooks.ProvStore = remoteStore
			if telem != nil {
				telem.RegisterStore("provstore", func() telemetry.StoreStats {
					return storeTelemetry(remoteStore.Stats())
				})
			}
		}
		q, err := harness.BuildSPE3(o, links, hooks)
		if err != nil {
			return err
		}
		runErr := q.Run(ctx)
		if remoteStore != nil {
			// Flush the final batch and watermark; a store error fails the
			// node like any other.
			if cerr := remoteStore.Close(); runErr == nil {
				runErr = cerr
			}
		}
		if runErr != nil {
			return runErr
		}
		if remoteStore != nil {
			ss := remoteStore.Stats()
			fmt.Printf("spe3: streamed %d sink entries (%d deduplicated sources) to store node %s\n",
				ss.Sinks, ss.Sources, *storeAddr)
		}
		fmt.Printf("spe3: %d provenance results in %v\n", provResults, time.Since(begin).Round(time.Millisecond))
	default:
		return fmt.Errorf("role must be 1, 2 or 3 (got %d)", *role)
	}
	return nil
}

// runStoreNode runs the shared provenance store node: a provstore.Server
// over an in-memory backend or a durable file log (created fresh, or — after
// a crash or restart — reopened for appends with every acknowledged entry
// intact). It serves until SIGINT/SIGTERM or the deadline, then flushes and
// closes the backend.
func runStoreNode(ctx context.Context, listen, path string, horizon int64, telemetryListen string) error {
	var (
		be  provstore.Backend
		err error
	)
	switch {
	case path == "":
		be = provstore.NewMemoryBackend(horizon)
	default:
		if _, statErr := os.Stat(path); statErr == nil {
			be, err = provstore.OpenFileLogAppend(path)
		} else {
			be, err = provstore.CreateFileLog(path, horizon)
		}
		if err != nil {
			return err
		}
	}
	srv := provstore.NewServer(be)
	addr, err := srv.Listen(listen)
	if err != nil {
		return err
	}
	if telemetryListen != "" {
		telem := telemetry.NewRegistry()
		telem.RegisterStore("store-node", func() telemetry.StoreStats {
			return storeTelemetry(srv.Stats())
		})
		tsrv, err := telem.Listen(telemetryListen)
		if err != nil {
			return err
		}
		defer tsrv.Close()
		fmt.Printf("telemetry on http://%s (/metrics, /telemetry.json, /debug/pprof)\n", tsrv.Addr())
	}
	backing := "in-memory"
	if path != "" {
		backing = "file log " + path
	}
	fmt.Printf("store node listening on %s (%s)\n", addr, backing)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case <-ctx.Done():
	}
	// Close first — it drains in-flight frames — then snapshot, so the
	// summary counts everything the node acknowledged (Stats keeps working
	// on the in-memory index after Close).
	err = srv.Close()
	ss := srv.Stats()
	fmt.Printf("store node: %d sink entries, %d source entries (referenced %d times), %d bytes\n",
		ss.Sinks, ss.Sources, ss.SourceRefs, ss.Bytes)
	return err
}

// storeTelemetry converts provstore accounting into the telemetry exposition
// shape (the telemetry package cannot import provstore).
func storeTelemetry(s provstore.Stats) telemetry.StoreStats {
	return telemetry.StoreStats{
		Sinks:           s.Sinks,
		Sources:         s.Sources,
		SourceRefs:      s.SourceRefs,
		LiveSources:     s.LiveSources,
		RetiredSources:  s.RetiredSources,
		PeakLiveSources: s.PeakLiveSources,
		ReEncoded:       s.ReEncoded,
		Bytes:           s.Bytes,
		Watermark:       s.Watermark,
		Horizon:         s.Horizon,
		Instances:       s.Instances,
		MinWatermark:    s.MinWatermark,
		DedupRatio:      s.DedupRatio(),
	}
}
