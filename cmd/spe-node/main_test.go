package main

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"genealog/internal/core"
	"genealog/internal/provstore"
	"genealog/internal/smartgrid"
)

func TestRunRejectsBadRole(t *testing.T) {
	if err := run([]string{"-role", "5", "-timeout", "1s"}); err == nil {
		t.Fatal("invalid role must fail")
	}
}

func TestRunRejectsBadCodec(t *testing.T) {
	if err := run([]string{"-role", "1", "-codec", "xml", "-timeout", "1s"}); err == nil {
		t.Fatal("invalid codec must fail")
	}
}

func TestRunRejectsNPRole3(t *testing.T) {
	if err := run([]string{"-role", "3", "-mode", "NP", "-timeout", "1s"}); err == nil {
		t.Fatal("NP has no provenance node")
	}
}

func TestRunRejectsUnknownQuery(t *testing.T) {
	if err := run([]string{"-role", "1", "-query", "Q9", "-timeout", "1s"}); err == nil {
		t.Fatal("unknown query must fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flags must fail")
	}
}

func TestRunRejectsStoreFlagMisuse(t *testing.T) {
	if err := run([]string{"-store-listen", ":0", "-role", "3"}); err == nil {
		t.Fatal("-store-listen with -role must fail")
	}
	if err := run([]string{"-role", "1", "-store", "127.0.0.1:1"}); err == nil {
		t.Fatal("-store on a non-provenance role must fail")
	}
	if err := run([]string{"-role", "3", "-store-path", "x.glprov", "-timeout", "1s"}); err == nil {
		t.Fatal("-store-path without -store-listen must fail")
	}
	if err := run([]string{"-store-listen", ":0", "-store-path", "/no/such/dir/x.glprov"}); err == nil {
		t.Fatal("an uncreatable store path must fail")
	}
}

// TestStoreNodeServesIngestionAndQueries runs the store-node role end to
// end: a client streams entries to it over TCP, a query connection reads
// them back, and the node shuts down cleanly at its deadline, leaving a
// reopenable file log.
func TestStoreNodeServesIngestionAndQueries(t *testing.T) {
	// Reserve an ephemeral port for the node (run prints the bound address
	// but cannot hand it back to the test).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	path := filepath.Join(t.TempDir(), "node.glprov")

	done := make(chan error, 1)
	go func() { done <- run([]string{"-store-listen", addr, "-store-path", path, "-timeout", "3s"}) }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := provstore.Connect(ctx, addr, provstore.Options{Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	reading := smartgrid.NewMeterReading(1, 7, 0)
	alert := &smartgrid.BlackoutAlert{Base: core.NewBase(24), Count: 8}
	if _, err := st.Ingest(alert, []core.Tuple{reading}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := provstore.DialQuery(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	sinks, err := c.List(-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 1 {
		t.Fatalf("store node lists %d sinks, want 1", len(sinks))
	}
	if err := c.Close(); err != nil {
		t.Fatalf("client close: %v", err)
	}

	if err := <-done; err != nil {
		t.Fatalf("store node exit: %v", err)
	}
	ro, err := provstore.OpenRead(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ro.SinkIDs()); got != 1 {
		t.Fatalf("reopened log has %d sinks, want 1", got)
	}
}
