package main

import "testing"

func TestRunRejectsBadRole(t *testing.T) {
	if err := run([]string{"-role", "5", "-timeout", "1s"}); err == nil {
		t.Fatal("invalid role must fail")
	}
}

func TestRunRejectsBadCodec(t *testing.T) {
	if err := run([]string{"-role", "1", "-codec", "xml", "-timeout", "1s"}); err == nil {
		t.Fatal("invalid codec must fail")
	}
}

func TestRunRejectsNPRole3(t *testing.T) {
	if err := run([]string{"-role", "3", "-mode", "NP", "-timeout", "1s"}); err == nil {
		t.Fatal("NP has no provenance node")
	}
}

func TestRunRejectsUnknownQuery(t *testing.T) {
	if err := run([]string{"-role", "1", "-query", "Q9", "-timeout", "1s"}); err == nil {
		t.Fatal("unknown query must fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flags must fail")
	}
}
