package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"genealog/internal/core"
	"genealog/internal/provstore"
	"genealog/internal/smartgrid"
)

// writeStore builds a small store file: two alerts sharing one reading.
func writeStore(t *testing.T) (path string, sinkIDs []uint64) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "prov.glprov")
	st, err := provstore.Create(path, provstore.Options{Horizon: 48})
	if err != nil {
		t.Fatal(err)
	}
	shared := smartgrid.NewMeterReading(1, 7, 0)
	alert := func(ts int64) core.Tuple {
		return &smartgrid.BlackoutAlert{Base: core.NewBase(ts), Count: 8}
	}
	id1, err := st.Ingest(alert(24), []core.Tuple{shared, smartgrid.NewMeterReading(2, 8, 0)})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := st.Ingest(alert(48), []core.Tuple{shared})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return path, []uint64{id1, id2}
}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestStatsDefault(t *testing.T) {
	path, _ := writeStore(t)
	out := runCLI(t, "-store", path)
	for _, want := range []string{"sink entries    2", "source entries  2", "dedup 1.50x", "retention horizon 48"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestBackwardForwardAndList(t *testing.T) {
	path, ids := writeStore(t)
	out := runCLI(t, "-store", path, "-backward", "1")
	if !strings.Contains(out, "sg.blackout") || !strings.Contains(out, "sg.reading") {
		t.Fatalf("backward output missing formats:\n%s", out)
	}
	if !strings.Contains(out, "1,7,0.0000") {
		t.Fatalf("backward output missing the shared reading:\n%s", out)
	}

	// The shared reading was ingested first, so it is source entry 1; its
	// forward query must list both alerts.
	fwdOut := runCLI(t, "-store", path, "-forward", "1")
	if !strings.Contains(fwdOut, "-> 2 sink(s)") {
		t.Fatalf("forward output should list both alerts:\n%s", fwdOut)
	}

	listOut := runCLI(t, "-store", path, "-list", "1")
	if strings.Count(listOut, "sink ") != 1 {
		t.Fatalf("-list 1 should print one sink entry:\n%s", listOut)
	}
	_ = ids
}

func TestErrors(t *testing.T) {
	path, _ := writeStore(t)
	var sb strings.Builder
	if err := run([]string{"-store", path, "-backward", "999"}, &sb); err == nil {
		t.Fatal("unknown sink ID must fail")
	}
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("missing -store must fail")
	}
	if err := run([]string{"-store", path, "-connect", "127.0.0.1:1"}, &sb); err == nil {
		t.Fatal("-store with -connect must fail")
	}
	if err := run([]string{"-store", filepath.Join(t.TempDir(), "missing.glprov")}, &sb); err == nil {
		t.Fatal("missing file must fail")
	}
}

// startStoreNode serves the same two-alert store as writeStore from a live
// store node.
func startStoreNode(t *testing.T) string {
	t.Helper()
	srv := provstore.NewServer(provstore.NewMemoryBackend(48))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	st, err := provstore.Connect(context.Background(), addr.String(), provstore.Options{Horizon: 48})
	if err != nil {
		t.Fatal(err)
	}
	shared := smartgrid.NewMeterReading(1, 7, 0)
	alert := func(ts int64) core.Tuple {
		return &smartgrid.BlackoutAlert{Base: core.NewBase(ts), Count: 8}
	}
	if _, err := st.Ingest(alert(24), []core.Tuple{shared, smartgrid.NewMeterReading(2, 8, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Ingest(alert(48), []core.Tuple{shared}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return addr.String()
}

// TestConnectQueriesLiveStoreNode: -connect answers the same questions as
// -store, but against a running deployment's store node.
func TestConnectQueriesLiveStoreNode(t *testing.T) {
	addr := startStoreNode(t)
	out := runCLI(t, "-connect", addr)
	for _, want := range []string{"store node " + addr, "sink entries    2", "source entries  2", "dedup 1.50x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
	bwd := runCLI(t, "-connect", addr, "-backward", "1")
	if !strings.Contains(bwd, "sg.blackout") || !strings.Contains(bwd, "1,7,0.0000") {
		t.Fatalf("backward output missing the shared reading:\n%s", bwd)
	}
	fwd := runCLI(t, "-connect", addr, "-forward", "1")
	if !strings.Contains(fwd, "-> 2 sink(s)") {
		t.Fatalf("forward output should list both alerts:\n%s", fwd)
	}
	listOut := runCLI(t, "-connect", addr, "-list", "1")
	if strings.Count(listOut, "sink ") != 1 {
		t.Fatalf("-list 1 should print one sink entry:\n%s", listOut)
	}
	var sb strings.Builder
	if err := run([]string{"-connect", addr, "-backward", "999"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "no sink entry 999") {
		t.Fatalf("unknown sink ID over -connect = %v, want a descriptive error", err)
	}
}
