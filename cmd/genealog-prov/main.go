// Command genealog-prov answers provenance queries against a store written
// by a run: the serving side of GeneaLog — ask which source tuples caused an
// alert (backward) and which alerts a source tuple contributed to (forward).
// It reads either a store file left behind by a finished run (harness
// Options.StorePath, genealog-bench -store, examples/quickstart -store) or,
// with -connect, a *running* store node (spe-node -store-listen) serving the
// merged provenance of a live deployment.
//
// Usage:
//
//	genealog-prov -store prov.glprov                  # store statistics
//	genealog-prov -store prov.glprov -list 5          # first 5 sink entries
//	genealog-prov -store prov.glprov -backward 3      # sources of sink entry 3
//	genealog-prov -store prov.glprov -forward 17      # sinks fed by source 17
//	genealog-prov -connect 127.0.0.1:7432 -stats -list 5   # same, against a live store node
//
// Entries print as "id ts format payload"; payloads are the CSV renderings
// of the run's registered csvio formats, so the output is readable without
// the workload's Go types.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"genealog/internal/provstore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genealog-prov:", err)
		os.Exit(1)
	}
}

// querier is the read API shared by a cold store file and a live store node.
type querier interface {
	stats() (provstore.Stats, error)
	list(n int) ([]provstore.SinkEntry, error)
	backward(id uint64) (provstore.SinkEntry, []provstore.SourceEntry, error)
	forward(id uint64) (provstore.SourceEntry, []provstore.SinkEntry, error)
}

// fileQuerier serves a store file opened read-only.
type fileQuerier struct{ st *provstore.Store }

func (f fileQuerier) stats() (provstore.Stats, error) { return f.st.Stats(), nil }

func (f fileQuerier) list(n int) ([]provstore.SinkEntry, error) {
	ids := f.st.HeadSinkIDs(n)
	sinks := make([]provstore.SinkEntry, 0, len(ids))
	for _, id := range ids {
		sink, err := f.st.Sink(id)
		if err != nil {
			return nil, err
		}
		sinks = append(sinks, sink)
	}
	return sinks, nil
}

func (f fileQuerier) backward(id uint64) (provstore.SinkEntry, []provstore.SourceEntry, error) {
	return f.st.Backward(id)
}

func (f fileQuerier) forward(id uint64) (provstore.SourceEntry, []provstore.SinkEntry, error) {
	return f.st.Forward(id)
}

// remoteQuerier serves a live store node over one query connection.
type remoteQuerier struct{ c *provstore.Client }

func (r remoteQuerier) stats() (provstore.Stats, error) { return r.c.Stats() }

func (r remoteQuerier) list(n int) ([]provstore.SinkEntry, error) { return r.c.List(n) }

func (r remoteQuerier) backward(id uint64) (provstore.SinkEntry, []provstore.SourceEntry, error) {
	return r.c.Backward(id)
}

func (r remoteQuerier) forward(id uint64) (provstore.SourceEntry, []provstore.SinkEntry, error) {
	return r.c.Forward(id)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genealog-prov", flag.ContinueOnError)
	store := fs.String("store", "", "path to a provenance store file")
	connect := fs.String("connect", "", "address of a running store node (spe-node -store-listen)")
	backward := fs.Uint64("backward", 0, "print the source entries contributing to this sink entry ID")
	forward := fs.Uint64("forward", 0, "print the sink entries this source entry ID contributed to")
	list := fs.Int("list", 0, "print the first N sink entries (-1 = all)")
	stats := fs.Bool("stats", false, "print store statistics (default when no query flag is given)")
	dialTimeout := fs.Duration("dial-timeout", 10*time.Second, "how long -connect waits for the store node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*store == "") == (*connect == "") {
		return fmt.Errorf("need exactly one of -store (a store file) or -connect (a running store node)")
	}
	var (
		q    querier
		name string
	)
	if *store != "" {
		st, err := provstore.OpenRead(*store)
		if err != nil {
			return err
		}
		q, name = fileQuerier{st}, "store "+*store
	} else {
		ctx, cancel := context.WithTimeout(context.Background(), *dialTimeout)
		defer cancel()
		c, err := provstore.DialQuery(ctx, *connect)
		if err != nil {
			return err
		}
		defer c.Close()
		q, name = remoteQuerier{c}, "store node "+*connect
	}

	queried := false
	if *list != 0 {
		queried = true
		if err := printList(out, q, *list); err != nil {
			return err
		}
	}
	if *backward != 0 {
		queried = true
		if err := printBackward(out, q, *backward); err != nil {
			return err
		}
	}
	if *forward != 0 {
		queried = true
		if err := printForward(out, q, *forward); err != nil {
			return err
		}
	}
	if *stats || !queried {
		s, err := q.stats()
		if err != nil {
			return err
		}
		printStats(out, name, s)
	}
	return nil
}

func printStats(out io.Writer, name string, s provstore.Stats) {
	fmt.Fprintf(out, "%s\n", name)
	fmt.Fprintf(out, "  sink entries    %d\n", s.Sinks)
	fmt.Fprintf(out, "  source entries  %d (referenced %d times, dedup %.2fx)\n",
		s.Sources, s.SourceRefs, s.DedupRatio())
	fmt.Fprintf(out, "  bytes           %d\n", s.Bytes)
	fmt.Fprintf(out, "  watermark       %d (retention horizon %d)\n", s.Watermark, s.Horizon)
	fmt.Fprintf(out, "  instances       %d (min watermark %d)\n", s.Instances, s.MinWatermark)
	fmt.Fprintf(out, "  retired         %d source entries (live %d)\n", s.RetiredSources, s.LiveSources)
}

func printSink(out io.Writer, e provstore.SinkEntry) {
	fmt.Fprintf(out, "sink %d  ts=%d  %s  %s  <- %d source(s)\n",
		e.ID, e.Ts, formatName(e.Format), e.Payload, len(e.Sources))
}

func printSource(out io.Writer, e provstore.SourceEntry) {
	fmt.Fprintf(out, "  source %d  ts=%d  %s  %s  (refs %d)\n",
		e.ID, e.Ts, formatName(e.Format), e.Payload, e.Refs)
}

func formatName(name string) string {
	if name == "" {
		return "(unregistered)"
	}
	return name
}

func printList(out io.Writer, q querier, n int) error {
	sinks, err := q.list(n)
	if err != nil {
		return err
	}
	for _, sink := range sinks {
		printSink(out, sink)
	}
	return nil
}

func printBackward(out io.Writer, q querier, id uint64) error {
	sink, sources, err := q.backward(id)
	if err != nil {
		return err
	}
	printSink(out, sink)
	for _, src := range sources {
		printSource(out, src)
	}
	return nil
}

func printForward(out io.Writer, q querier, id uint64) error {
	src, sinks, err := q.forward(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "source %d  ts=%d  %s  %s  -> %d sink(s)\n",
		src.ID, src.Ts, formatName(src.Format), src.Payload, len(sinks))
	for _, sink := range sinks {
		fmt.Fprintf(out, "  sink %d  ts=%d  %s  %s\n", sink.ID, sink.Ts, formatName(sink.Format), sink.Payload)
	}
	return nil
}
