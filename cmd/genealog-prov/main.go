// Command genealog-prov answers provenance queries against a store file
// written by a previous run (harness Options.StorePath, genealog-bench
// -store, examples/quickstart -store): the serving side of GeneaLog — ask
// *after* the run ended which source tuples caused an alert (backward) and
// which alerts a source tuple contributed to (forward).
//
// Usage:
//
//	genealog-prov -store prov.glprov                  # store statistics
//	genealog-prov -store prov.glprov -list 5          # first 5 sink entries
//	genealog-prov -store prov.glprov -backward 3      # sources of sink entry 3
//	genealog-prov -store prov.glprov -forward 17      # sinks fed by source 17
//
// Entries print as "id ts format payload"; payloads are the CSV renderings
// of the run's registered csvio formats, so the output is readable without
// the workload's Go types.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"genealog/internal/provstore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genealog-prov:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("genealog-prov", flag.ContinueOnError)
	store := fs.String("store", "", "path to a provenance store file (required)")
	backward := fs.Uint64("backward", 0, "print the source entries contributing to this sink entry ID")
	forward := fs.Uint64("forward", 0, "print the sink entries this source entry ID contributed to")
	list := fs.Int("list", 0, "print the first N sink entries (-1 = all)")
	stats := fs.Bool("stats", false, "print store statistics (default when no query flag is given)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("missing -store (path to a provenance store file)")
	}
	st, err := provstore.OpenRead(*store)
	if err != nil {
		return err
	}

	queried := false
	if *list != 0 {
		queried = true
		if err := printList(out, st, *list); err != nil {
			return err
		}
	}
	if *backward != 0 {
		queried = true
		if err := printBackward(out, st, *backward); err != nil {
			return err
		}
	}
	if *forward != 0 {
		queried = true
		if err := printForward(out, st, *forward); err != nil {
			return err
		}
	}
	if *stats || !queried {
		printStats(out, *store, st.Stats())
	}
	return nil
}

func printStats(out io.Writer, path string, s provstore.Stats) {
	fmt.Fprintf(out, "store %s\n", path)
	fmt.Fprintf(out, "  sink entries    %d\n", s.Sinks)
	fmt.Fprintf(out, "  source entries  %d (referenced %d times, dedup %.2fx)\n",
		s.Sources, s.SourceRefs, s.DedupRatio())
	fmt.Fprintf(out, "  bytes           %d\n", s.Bytes)
	fmt.Fprintf(out, "  watermark       %d (retention horizon %d)\n", s.Watermark, s.Horizon)
	fmt.Fprintf(out, "  retired         %d source entries (live %d)\n", s.RetiredSources, s.LiveSources)
}

func printSink(out io.Writer, e provstore.SinkEntry) {
	fmt.Fprintf(out, "sink %d  ts=%d  %s  %s  <- %d source(s)\n",
		e.ID, e.Ts, formatName(e.Format), e.Payload, len(e.Sources))
}

func printSource(out io.Writer, e provstore.SourceEntry) {
	fmt.Fprintf(out, "  source %d  ts=%d  %s  %s  (refs %d)\n",
		e.ID, e.Ts, formatName(e.Format), e.Payload, e.Refs)
}

func formatName(name string) string {
	if name == "" {
		return "(unregistered)"
	}
	return name
}

func printList(out io.Writer, st *provstore.Store, n int) error {
	for _, id := range st.HeadSinkIDs(n) {
		sink, err := st.Sink(id)
		if err != nil {
			return err
		}
		printSink(out, sink)
	}
	return nil
}

func printBackward(out io.Writer, st *provstore.Store, id uint64) error {
	sink, sources, err := st.Backward(id)
	if err != nil {
		return err
	}
	printSink(out, sink)
	for _, src := range sources {
		printSource(out, src)
	}
	return nil
}

func printForward(out io.Writer, st *provstore.Store, id uint64) error {
	src, sinks, err := st.Forward(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "source %d  ts=%d  %s  %s  -> %d sink(s)\n",
		src.ID, src.Ts, formatName(src.Format), src.Payload, len(sinks))
	for _, sink := range sinks {
		fmt.Fprintf(out, "  sink %d  ts=%d  %s  %s\n", sink.ID, sink.Ts, formatName(sink.Format), sink.Payload)
	}
	return nil
}
