// Command sg-gen writes the deterministic smart-meter reading stream as CSV
// (ts,meter_id,cons) to stdout or a file, for inspection or for feeding
// external tools.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"genealog/internal/core"
	"genealog/internal/smartgrid"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sg-gen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sg-gen", flag.ContinueOnError)
	meters := fs.Int("meters", 100, "number of smart meters")
	days := fs.Int("days", 60, "number of simulated days")
	blackoutEvery := fs.Int("blackout-every", 7, "inject a blackout day every N days (0 = never)")
	blackoutMeters := fs.Int("blackout-meters", smartgrid.BlackoutMeterThreshold+1, "meters reporting zero on a blackout day")
	anomalyEvery := fs.Int("anomaly-every", 5, "inject a midnight anomaly every N days (0 = never)")
	anomalyValue := fs.Float64("anomaly-value", 300, "consumption reported by the anomalous midnight reading")
	seed := fs.Int64("seed", 7, "random seed")
	outPath := fs.String("o", "-", "output file (- = stdout)")
	header := fs.Bool("header", true, "write a CSV header line")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	if *header {
		fmt.Fprintln(bw, "ts,meter_id,cons")
	}
	g := smartgrid.NewGenerator(smartgrid.Config{
		Meters: *meters, Days: *days, BlackoutEvery: *blackoutEvery,
		BlackoutMeters: *blackoutMeters, AnomalyEvery: *anomalyEvery,
		AnomalyValue: *anomalyValue, Seed: *seed,
	})
	n := 0
	err := g.SourceFunc()(context.Background(), func(t core.Tuple) error {
		r := t.(*smartgrid.MeterReading)
		bw.WriteString(strconv.FormatInt(r.Timestamp(), 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.Itoa(int(r.MeterID)))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatFloat(r.Cons, 'f', 4, 64))
		bw.WriteByte('\n')
		n++
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sg-gen: wrote %d meter readings\n", n)
	return nil
}
