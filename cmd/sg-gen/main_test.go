package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sg.csv")
	if err := run([]string{"-meters", "2", "-days", "1", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "ts,meter_id,cons" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+2*24 {
		t.Fatalf("lines = %d, want header + 48 records", len(lines))
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flags must fail")
	}
}
