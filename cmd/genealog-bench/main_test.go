package main

import (
	"os"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}, os.Stdout); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunRejectsUnknownCodec(t *testing.T) {
	if err := run([]string{"-experiment", "size", "-codec", "xml"}, os.Stdout); err == nil {
		t.Fatal("unknown codec must fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Fatal("unknown flags must fail")
	}
}

func TestSizeExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the four queries")
	}
	f, err := os.CreateTemp(t.TempDir(), "size-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-experiment", "size"}, f); err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("size experiment produced no output")
	}
}
