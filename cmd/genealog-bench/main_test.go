package main

import (
	"os"
	"runtime"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}, os.Stdout); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunRejectsUnknownCodec(t *testing.T) {
	if err := run([]string{"-experiment", "size", "-codec", "xml"}, os.Stdout); err == nil {
		t.Fatal("unknown codec must fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Fatal("unknown flags must fail")
	}
}

func TestSizeExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the four queries")
	}
	f, err := os.CreateTemp(t.TempDir(), "size-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-experiment", "size"}, f); err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("size experiment produced no output")
	}
}

func TestRunRejectsNegativeParallelism(t *testing.T) {
	if err := run([]string{"-experiment", "size", "-parallelism", "-2"}, os.Stdout); err == nil {
		t.Fatal("negative parallelism must fail")
	}
}

func TestRunRejectsNegativeBatch(t *testing.T) {
	if err := run([]string{"-experiment", "size", "-batch", "-1"}, os.Stdout); err == nil {
		t.Fatal("negative batch must fail")
	}
}

func TestResolveParallelism(t *testing.T) {
	if _, err := resolveParallelism(-1); err == nil {
		t.Fatal("negative parallelism must be rejected")
	}
	if p, err := resolveParallelism(1); err != nil || p != 1 {
		t.Fatalf("resolveParallelism(1) = %d, %v; want 1 (serial)", p, err)
	}
	if p, err := resolveParallelism(6); err != nil || p != 6 {
		t.Fatalf("resolveParallelism(6) = %d, %v; want 6", p, err)
	}
	p, err := resolveParallelism(0)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1 {
		t.Fatalf("auto parallelism = %d, want >= 1", p)
	}
	if n := runtime.NumCPU(); n >= 2 && p != n {
		t.Fatalf("auto parallelism = %d, want NumCPU (%d)", p, n)
	}
}

func TestRunRejectsOversizedBatch(t *testing.T) {
	if err := run([]string{"-experiment", "size", "-batch", "2000000"}, os.Stdout); err == nil {
		t.Fatal("batch above the wire frame bound must fail")
	}
}
