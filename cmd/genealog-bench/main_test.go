package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"genealog/internal/provstore"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}, os.Stdout); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunRejectsUnknownCodec(t *testing.T) {
	if err := run([]string{"-experiment", "size", "-codec", "xml"}, os.Stdout); err == nil {
		t.Fatal("unknown codec must fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Fatal("unknown flags must fail")
	}
}

func TestSizeExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the four queries")
	}
	f, err := os.CreateTemp(t.TempDir(), "size-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-experiment", "size"}, f); err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("size experiment produced no output")
	}
}

func TestRunRejectsNegativeParallelism(t *testing.T) {
	if err := run([]string{"-experiment", "size", "-parallelism", "-2"}, os.Stdout); err == nil {
		t.Fatal("negative parallelism must fail")
	}
}

func TestRunRejectsNegativeBatch(t *testing.T) {
	if err := run([]string{"-experiment", "size", "-batch", "-1"}, os.Stdout); err == nil {
		t.Fatal("negative batch must fail")
	}
}

func TestResolveParallelism(t *testing.T) {
	if _, err := resolveParallelism(-1); err == nil {
		t.Fatal("negative parallelism must be rejected")
	}
	if p, err := resolveParallelism(1); err != nil || p != 1 {
		t.Fatalf("resolveParallelism(1) = %d, %v; want 1 (serial)", p, err)
	}
	if p, err := resolveParallelism(6); err != nil || p != 6 {
		t.Fatalf("resolveParallelism(6) = %d, %v; want 6", p, err)
	}
	p, err := resolveParallelism(0)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1 {
		t.Fatalf("auto parallelism = %d, want >= 1", p)
	}
	if n := runtime.NumCPU(); n >= 2 && p != n {
		t.Fatalf("auto parallelism = %d, want NumCPU (%d)", p, n)
	}
}

func TestRunRejectsOversizedBatch(t *testing.T) {
	if err := run([]string{"-experiment", "size", "-batch", "2000000"}, os.Stdout); err == nil {
		t.Fatal("batch above the wire frame bound must fail")
	}
}

func TestVerbosePrintsPhysicalPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the four queries")
	}
	f, err := os.CreateTemp(t.TempDir(), "plan-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-experiment", "size", "-parallelism", "4", "-v"}, f); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "physical plan") {
		t.Fatal("-v output misses the physical plan dump")
	}
	if !strings.Contains(string(body), "hoisted above") {
		t.Fatal("-v output at parallelism 4 misses the hoisted prefixes")
	}
}

func TestExplicitFuseWarnsOnUnfusibleTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the four queries")
	}
	f, err := os.CreateTemp(t.TempDir(), "fuse-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// At parallelism 1 the evaluation queries interleave stateless and
	// stateful operators, so several cells have nothing to fuse; asking for
	// -fuse explicitly must say so instead of silently doing nothing.
	if err := run([]string{"-experiment", "size", "-fuse"}, f); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "no fusible stateless chain") {
		t.Fatal("explicit -fuse on an unfusible topology must print a note")
	}
}

func TestStoreFlagWritesPerCellStores(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the four queries")
	}
	f, err := os.CreateTemp(t.TempDir(), "store-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prefix := filepath.Join(t.TempDir(), "prov")
	if err := run([]string{"-experiment", "size", "-store", prefix}, f); err != nil {
		t.Fatal(err)
	}
	// The size experiment runs Q1-Q4 under GL intra-process: one store file
	// per cell, each answering queries after the run.
	for _, q := range []string{"Q1", "Q2", "Q3", "Q4"} {
		path := prefix + "-" + q + "-GL"
		st, err := provstore.OpenRead(path)
		if err != nil {
			t.Fatalf("cell store %s: %v", path, err)
		}
		ss := st.Stats()
		if ss.Sinks == 0 || ss.Sources == 0 {
			t.Fatalf("cell store %s is empty: %+v", path, ss)
		}
		if _, _, err := st.Backward(st.SinkIDs()[0]); err != nil {
			t.Fatalf("cell store %s: %v", path, err)
		}
	}
}

func TestFuseOffEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the four queries")
	}
	f, err := os.CreateTemp(t.TempDir(), "nofuse-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-experiment", "size", "-fuse=false"}, f); err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("-fuse=false run produced no output")
	}
}
