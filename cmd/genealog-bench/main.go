// Command genealog-bench reproduces the paper's evaluation (§7). It runs
// the use-case queries (Linear Road Q1-Q2, Smart Grid Q3-Q4, clickstream
// Q5) under NP (no provenance), GL (GeneaLog) and BL (the Ariadne-style
// baseline), intra-process and across three SPE instances, and prints the
// rows of Figures 12, 13 and 14 plus the provenance-volume report.
//
// Usage:
//
//	genealog-bench -experiment fig12            # intra-process grid
//	genealog-bench -experiment fig13 -runs 5    # inter-process grid, 5 runs
//	genealog-bench -experiment fig14            # traversal-cost panels
//	genealog-bench -experiment size             # provenance volume report
//	genealog-bench -experiment all -scale 4     # everything, 4x workload
//	genealog-bench -experiment fig12 -parallelism 4  # shard-parallel keyed operators
//	genealog-bench -experiment fig12 -parallelism 0 -batch 64  # auto shards, batched streams
//	genealog-bench -experiment fig12 -adaptive       # AIMD controller sizes batches live
//	genealog-bench -experiment fig12 -fuse=false     # planner off: one goroutine per operator
//	genealog-bench -experiment fig12 -v              # print every cell's physical plan
//	genealog-bench -experiment fig12 -store /tmp/prov  # persist per-cell provenance stores
//	genealog-bench -experiment fig12 -json > bench.json # machine-readable per-cell results
//	genealog-bench -experiment fig12 -remote-store 127.0.0.1:7432  # stream provenance to a store node
//
// The -throttle flag (bytes/second) models a constrained link, e.g.
// -throttle 12500000 for the paper's 100 Mbps switch. The -parallelism flag
// shard-parallelises every keyed stateful operator (1 = serial, 0 = auto:
// choose from the CPU count); sink tuples and provenance are byte-identical
// to serial execution at any level (keyed joins order same-timestamp matches
// by timestamp then join keys at every parallelism). The -batch flag moves
// tuples through operator queues and links in vectors of up to that many,
// trading per-tuple latency for throughput with byte-identical output. The
// -fuse flag (default on) controls the physical planner: stateless operator
// chains fuse into single goroutines and stateless prefixes of shard-parallel
// operators replicate into the shard lanes; output and provenance are
// byte-identical either way. The -vectorize flag (default on) controls the
// planner's columnar pass: stateless segments whose stages declare typed
// kernels run over struct-of-arrays batches instead of row-at-a-time
// closures, again with byte-identical output and provenance. The -adaptive
// flag (with -adaptive-min/-adaptive-max bounds) closes the telemetry
// feedback loop: an AIMD controller samples every stream's queue occupancy
// and batch fill and resizes its batch size live, growing under load and
// shrinking when queues drain — sink output and provenance stay
// byte-identical to any fixed batch size. -v prints each
// cell's physical plan before the runs. The -store flag
// persists every cell's assembled provenance into durable store files (one
// per query x mode cell, "-inter" suffix for the inter-process grid); after
// the runs, cmd/genealog-prov answers backward/forward queries against them,
// and the report gains per-cell store rows (bytes, dedup ratio) comparing
// GL's deduplicated store with BL's retain-everything source store.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"genealog/internal/clickstream"
	"genealog/internal/harness"
	"genealog/internal/linearroad"
	"genealog/internal/smartgrid"
	"genealog/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genealog-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("genealog-bench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "fig12 | fig13 | fig14 | size | all")
	runs := fs.Int("runs", 3, "measured runs per configuration (the paper uses 5)")
	scale := fs.Int("scale", 1, "workload scale multiplier")
	throttle := fs.Float64("throttle", 0, "link throttle in bytes/second (0 = unlimited; 12.5e6 = 100 Mbps)")
	rate := fs.Float64("rate", 0, "source rate in tuples/second (0 = unthrottled)")
	parallelism := fs.Int("parallelism", 1, "shard parallelism for keyed stateful operators: 1 = serial, n > 1 = n shards, 0 = auto (choose from the CPU count)")
	batch := fs.Int("batch", 1, "stream batch size: tuples per channel/wire operation (0/1 = unbatched)")
	fuse := fs.Bool("fuse", true, "physical planner: fuse stateless operator chains and replicate stateless prefixes into shard lanes (false = one goroutine per logical operator)")
	vectorize := fs.Bool("vectorize", true, "columnar pass: run kernel-capable stateless segments as typed kernels over struct-of-arrays batches (false = row-at-a-time closures)")
	adaptive := fs.Bool("adaptive", false, "adaptive batch sizing: an AIMD controller resizes every stream's batch size live from queue occupancy and batch fill (output stays byte-identical to any fixed size)")
	adaptiveMin := fs.Int("adaptive-min", 1, "adaptive batch sizing: smallest batch size the controller may shrink to")
	adaptiveMax := fs.Int("adaptive-max", harness.DefaultAdaptiveMaxBatch, "adaptive batch sizing: largest batch size the controller may grow to")
	jsonOut := fs.Bool("json", false, "emit machine-readable per-cell results as a JSON document instead of the rendered figures (plans and notes go to stderr)")
	storePath := fs.String("store", "", "persist each cell's assembled provenance into durable store files at this path prefix (suffix: -<query>-<mode>[-inter]); query them with genealog-prov")
	remoteStore := fs.String("remote-store", "", "stream each cell's assembled provenance to the store node at this address (spe-node -store-listen); query it live with genealog-prov -connect")
	verbose := fs.Bool("v", false, "print the physical plan of every (query, mode) cell before running")
	codec := fs.String("codec", "gob", "inter-process link codec: gob | binary")
	timeout := fs.Duration("timeout", 30*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fuseExplicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "fuse" {
			fuseExplicit = true
		}
	})
	if *scale < 1 {
		*scale = 1
	}
	p, err := resolveParallelism(*parallelism)
	if err != nil {
		return err
	}
	if *batch < 0 {
		return fmt.Errorf("batch must be non-negative, got %d", *batch)
	}
	if *batch > transport.MaxBatchFrameTuples {
		return fmt.Errorf("batch must not exceed the wire frame bound %d, got %d", transport.MaxBatchFrameTuples, *batch)
	}

	base := harness.Options{
		LR:                  lrConfig(*scale),
		SG:                  sgConfig(*scale),
		CS:                  csConfig(*scale),
		ThrottleBytesPerSec: *throttle,
		SourceRate:          *rate,
		Parallelism:         p,
		BatchSize:           *batch,
		AdaptiveBatch:       *adaptive,
		AdaptiveMinBatch:    *adaptiveMin,
		AdaptiveMaxBatch:    *adaptiveMax,
		UseBinaryCodec:      *codec == "binary",
		NoFusion:            !*fuse,
		NoVectorize:         !*vectorize,
		StorePath:           *storePath,
		RemoteStore:         *remoteStore,
	}
	if *storePath != "" && *remoteStore != "" {
		return fmt.Errorf("-store and -remote-store are mutually exclusive")
	}
	if *codec != "gob" && *codec != "binary" {
		return fmt.Errorf("unknown codec %q (want gob or binary)", *codec)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	want := func(name string) bool { return *experiment == name || *experiment == "all" }
	planOut := out
	if *jsonOut {
		// Keep stdout a single valid JSON document; plans and planner notes
		// remain available on stderr.
		planOut = os.Stderr
	}
	if err := reportPlans(planOut, base, *experiment, *verbose, *fuse && fuseExplicit); err != nil {
		return err
	}
	doc := benchDoc{
		Experiment: *experiment, Runs: *runs, Scale: *scale,
		Parallelism: p, Batch: *batch, Fuse: *fuse, Vectorize: *vectorize, Codec: *codec,
		Adaptive: *adaptive, AdaptiveMin: *adaptiveMin, AdaptiveMax: *adaptiveMax,
	}
	ran := false
	if want("fig12") {
		ran = true
		fig, err := harness.Fig12(ctx, base, *runs)
		if err != nil {
			return err
		}
		if *jsonOut {
			doc.Cells = append(doc.Cells, fig.JSONCells("fig12")...)
		} else {
			fmt.Fprintln(out, fig.Render())
		}
	}
	if want("fig13") {
		ran = true
		fig, err := harness.Fig13(ctx, base, *runs)
		if err != nil {
			return err
		}
		if *jsonOut {
			doc.Cells = append(doc.Cells, fig.JSONCells("fig13")...)
		} else {
			fmt.Fprintln(out, fig.Render())
		}
	}
	if want("fig14") {
		ran = true
		fig, err := harness.Fig14(ctx, base, *runs)
		if err != nil {
			return err
		}
		if *jsonOut {
			doc.Cells = append(doc.Cells, fig.JSONCells()...)
		} else {
			fmt.Fprintln(out, fig.Render())
		}
	}
	if want("size") {
		ran = true
		rep, err := harness.Size(ctx, base)
		if err != nil {
			return err
		}
		if *jsonOut {
			doc.Cells = append(doc.Cells, rep.JSONCells()...)
		} else {
			fmt.Fprintln(out, rep.Render())
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want fig12, fig13, fig14, size or all)", *experiment)
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	return nil
}

// benchDoc is the top-level document -json emits: the invocation's resolved
// configuration plus every measured cell.
type benchDoc struct {
	Experiment  string             `json:"experiment"`
	Runs        int                `json:"runs"`
	Scale       int                `json:"scale"`
	Parallelism int                `json:"parallelism"`
	Batch       int                `json:"batch"`
	Fuse        bool               `json:"fuse"`
	Vectorize   bool               `json:"vectorize"`
	Adaptive    bool               `json:"adaptive"`
	AdaptiveMin int                `json:"adaptive_min,omitempty"`
	AdaptiveMax int                `json:"adaptive_max,omitempty"`
	Codec       string             `json:"codec"`
	Cells       []harness.CellJSON `json:"cells"`
}

// reportPlans inspects the physical plan of every (query, mode) cell the
// experiment will run. Under -v it prints each plan; when -fuse was asked
// for explicitly but a cell's topology gives the planner nothing to rewrite
// (no fusible stateless chain, no hoistable prefix), it prints a note so the
// flag never silently does nothing.
func reportPlans(out *os.File, base harness.Options, experiment string, verbose, warnUnfusible bool) error {
	if !verbose && !warnUnfusible {
		return nil
	}
	// Cover exactly the deployments the experiment selection will run:
	// fig13 is inter-process, fig12/fig14/size are intra, "all" runs both.
	var deployments []harness.Deployment
	if experiment != "fig13" {
		deployments = append(deployments, harness.Intra)
	}
	if experiment == "fig13" || experiment == "all" {
		deployments = append(deployments, harness.Inter)
	}
	for _, deployment := range deployments {
		for _, q := range harness.Queries {
			for _, m := range harness.Modes {
				o := base
				o.Query, o.Mode, o.Deployment = q, m, deployment
				info, err := harness.Explain(o)
				if err != nil {
					return fmt.Errorf("plan %s/%s: %w", q, m, err)
				}
				if verbose {
					fmt.Fprintf(out, "--- %s/%s (%s) ---\n%s\n", q, m, deployment, info.Text)
				}
				if warnUnfusible && info.FusedChains == 0 && info.HoistedPrefixes == 0 {
					fmt.Fprintf(out, "note: -fuse requested, but %s/%s (%s, parallelism %d) has no fusible stateless chain or hoistable prefix; the plan is unchanged\n",
						q, m, deployment, o.Parallelism)
				}
			}
		}
	}
	return nil
}

// resolveParallelism maps the -parallelism flag to a shard count: 1 keeps
// serial execution, n > 1 selects n shards, and 0 is the ROADMAP's auto
// mode — choose from the machine's CPU count, leaving headroom below 2
// cores where sharding only adds partition/fan-in overhead. Negative values
// are rejected.
func resolveParallelism(p int) (int, error) {
	if p < 0 {
		return 0, fmt.Errorf("parallelism must be >= 0 (1 = serial, 0 = auto), got %d", p)
	}
	if p != 0 {
		return p, nil
	}
	if n := runtime.NumCPU(); n >= 2 {
		return n, nil
	}
	return 1, nil
}

// lrConfig scales the Linear Road workload: more cars and longer runs keep
// the alert density realistic while increasing volume.
func lrConfig(scale int) linearroad.Config {
	return linearroad.Config{
		Cars:          100 * scale,
		Steps:         600,
		StopEvery:     10,
		StopDuration:  6,
		AccidentEvery: 40,
		Seed:          42,
	}
}

// sgConfig scales the Smart Grid workload.
func sgConfig(scale int) smartgrid.Config {
	return smartgrid.Config{
		Meters:         100 * scale,
		Days:           60,
		BlackoutEvery:  7,
		BlackoutMeters: smartgrid.BlackoutMeterThreshold + 1,
		AnomalyEvery:   5,
		AnomalyValue:   300,
		Seed:           7,
	}
}

// csConfig scales the clickstream workload: more users keeps the hot-session
// density fixed while increasing volume.
func csConfig(scale int) clickstream.Config {
	return clickstream.Config{
		Users:    100 * scale,
		Windows:  120,
		HotEvery: 5,
		Pages:    200,
		Seed:     23,
	}
}
