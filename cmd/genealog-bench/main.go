// Command genealog-bench reproduces the paper's evaluation (§7). It runs
// the four use-case queries under NP (no provenance), GL (GeneaLog) and BL
// (the Ariadne-style baseline), intra-process and across three SPE
// instances, and prints the rows of Figures 12, 13 and 14 plus the
// provenance-volume report.
//
// Usage:
//
//	genealog-bench -experiment fig12            # intra-process grid
//	genealog-bench -experiment fig13 -runs 5    # inter-process grid, 5 runs
//	genealog-bench -experiment fig14            # traversal-cost panels
//	genealog-bench -experiment size             # provenance volume report
//	genealog-bench -experiment all -scale 4     # everything, 4x workload
//	genealog-bench -experiment fig12 -parallelism 4  # shard-parallel keyed operators
//
// The -throttle flag (bytes/second) models a constrained link, e.g.
// -throttle 12500000 for the paper's 100 Mbps switch. The -parallelism flag
// shard-parallelises every keyed stateful operator; sink tuples and
// provenance match serial execution at any level (aggregates byte for
// byte, joins as the same timestamp-sorted multiset).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"genealog/internal/harness"
	"genealog/internal/linearroad"
	"genealog/internal/smartgrid"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genealog-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("genealog-bench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "fig12 | fig13 | fig14 | size | all")
	runs := fs.Int("runs", 3, "measured runs per configuration (the paper uses 5)")
	scale := fs.Int("scale", 1, "workload scale multiplier")
	throttle := fs.Float64("throttle", 0, "link throttle in bytes/second (0 = unlimited; 12.5e6 = 100 Mbps)")
	rate := fs.Float64("rate", 0, "source rate in tuples/second (0 = unthrottled)")
	parallelism := fs.Int("parallelism", 0, "shard parallelism for keyed stateful operators (0/1 = serial)")
	codec := fs.String("codec", "gob", "inter-process link codec: gob | binary")
	timeout := fs.Duration("timeout", 30*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale < 1 {
		*scale = 1
	}

	base := harness.Options{
		LR:                  lrConfig(*scale),
		SG:                  sgConfig(*scale),
		ThrottleBytesPerSec: *throttle,
		SourceRate:          *rate,
		Parallelism:         *parallelism,
		UseBinaryCodec:      *codec == "binary",
	}
	if *codec != "gob" && *codec != "binary" {
		return fmt.Errorf("unknown codec %q (want gob or binary)", *codec)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	want := func(name string) bool { return *experiment == name || *experiment == "all" }
	ran := false
	if want("fig12") {
		ran = true
		fig, err := harness.Fig12(ctx, base, *runs)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	if want("fig13") {
		ran = true
		fig, err := harness.Fig13(ctx, base, *runs)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	if want("fig14") {
		ran = true
		fig, err := harness.Fig14(ctx, base, *runs)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	if want("size") {
		ran = true
		rep, err := harness.Size(ctx, base)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rep.Render())
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want fig12, fig13, fig14, size or all)", *experiment)
	}
	return nil
}

// lrConfig scales the Linear Road workload: more cars and longer runs keep
// the alert density realistic while increasing volume.
func lrConfig(scale int) linearroad.Config {
	return linearroad.Config{
		Cars:          100 * scale,
		Steps:         600,
		StopEvery:     10,
		StopDuration:  6,
		AccidentEvery: 40,
		Seed:          42,
	}
}

// sgConfig scales the Smart Grid workload.
func sgConfig(scale int) smartgrid.Config {
	return smartgrid.Config{
		Meters:         100 * scale,
		Days:           60,
		BlackoutEvery:  7,
		BlackoutMeters: smartgrid.BlackoutMeterThreshold + 1,
		AnomalyEvery:   5,
		AnomalyValue:   300,
		Seed:           7,
	}
}
