// Command genealog-lint runs the genealog static analyzers. It works both
// standalone and as a vet tool:
//
//	genealog-lint ./...                                  # standalone
//	genealog-lint -json ./...                            # CI annotations
//	go vet -vettool=$(which genealog-lint) ./...         # via the go command
//
// See internal/lint for the analyzers and internal/lint/doc.go for how to
// write a new one.
package main

import (
	"os"

	"genealog/internal/lint"
	"genealog/internal/lint/driver"
)

func main() {
	os.Exit(driver.Main(lint.All()))
}
