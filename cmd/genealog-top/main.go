// Command genealog-top is a live per-operator view of a running node — top
// for a GeneaLog deployment. It polls the JSON snapshot a node serves with
// `-telemetry-listen` (spe-node, examples/distributed) and renders a
// refreshing table of every operator's throughput, queue occupancy, live
// batch size (the AIMD controller's current setting under adaptive
// batching), batch fill and event-time watermark lag, plus the byte volume
// on each inter-process link and the provenance store's ingest/dedup
// counters.
//
// The snapshot's counters are cumulative since process start; rates are
// derived from the delta between consecutive polls, so the first frame shows
// lifetime averages and every later frame shows the last interval.
//
// Usage:
//
//	genealog-top -addr 127.0.0.1:7070               # refresh every second
//	genealog-top -addr 127.0.0.1:7070 -interval 250ms
//	genealog-top -addr 127.0.0.1:7070 -once         # one plain frame (no ANSI)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"genealog/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genealog-top:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("genealog-top", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "telemetry address of the node (spe-node -telemetry-listen)")
	interval := fs.Duration("interval", time.Second, "poll period")
	once := fs.Bool("once", false, "print one frame and exit (no screen clearing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval <= 0 {
		return fmt.Errorf("interval must be positive (got %v)", *interval)
	}
	url := "http://" + *addr + "/telemetry.json"

	snap, err := fetch(url)
	if err != nil {
		return err
	}
	if *once {
		render(w, *addr, snap, nil)
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	prev := &snap
	fmt.Fprint(w, "\x1b[2J") // clear once; frames repaint from the home position
	render(w, *addr, snap, nil)
	for {
		select {
		case <-sig:
			return nil
		case <-ticker.C:
		}
		next, err := fetch(url)
		if err != nil {
			// The node may be between runs or shutting down; say so and
			// keep polling rather than dying mid-watch.
			fmt.Fprintf(w, "\x1b[H\x1b[2Jgenealog-top: %v (retrying every %v)\n", err, *interval)
			continue
		}
		render(w, *addr, next, prev)
		prev = &next
	}
}

func fetch(url string) (telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("GET %s: %w", url, err)
	}
	return snap, nil
}

// render paints one frame. prev, when non-nil, is the previous poll: rates
// are computed from the counter deltas over the snapshots' own timestamps;
// with prev == nil the whole uptime is the window (lifetime averages).
func render(w io.Writer, addr string, snap telemetry.Snapshot, prev *telemetry.Snapshot) {
	var sb strings.Builder
	if prev != nil {
		sb.WriteString("\x1b[H\x1b[2J") // home + clear: repaint in place
	}
	fmt.Fprintf(&sb, "genealog-top  %s  up %s  %s\n\n",
		addr, time.Duration(snap.UptimeSeconds*float64(time.Second)).Round(time.Second),
		time.Unix(0, snap.TakenUnixNano).Format("15:04:05"))

	window := snap.UptimeSeconds
	prevOps := map[string]telemetry.OperatorSnapshot{}
	if prev != nil {
		window = float64(snap.TakenUnixNano-prev.TakenUnixNano) / float64(time.Second)
		for _, q := range prev.Queries {
			for _, o := range q.Operators {
				prevOps[q.Name+"\x00"+o.Name] = o
			}
		}
	}
	if window <= 0 {
		window = 1
	}

	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "QUERY\tOPERATOR\tKIND\tIN/s\tOUT/s\tTUPLES OUT\tQUEUE\tBATCH\tFILL%\tWM\tLAG")
	for _, q := range snap.Queries {
		for _, o := range q.Operators {
			base := prevOps[q.Name+"\x00"+o.Name] // zero value on first frame
			wm, lag := "-", "-"
			if o.WatermarkOK {
				wm = fmt.Sprintf("%d", o.Watermark)
				lag = fmt.Sprintf("%d", o.WatermarkLag)
			}
			batch := "-"
			if o.BatchSize > 0 {
				batch = fmt.Sprintf("%d", o.BatchSize)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\t%d/%d\t%s\t%.0f\t%s\t%s\n",
				q.Name, o.Name, o.Kind,
				rate(o.TuplesIn-base.TuplesIn, window),
				rate(o.TuplesOut-base.TuplesOut, window),
				o.TuplesOut, o.QueueLen, o.QueueCap, batch, 100*o.FillRatio, wm, lag)
		}
	}
	tw.Flush()

	if len(snap.Stores) > 0 {
		sb.WriteByte('\n')
		st := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
		fmt.Fprintln(st, "STORE\tSINKS\tSOURCES\tLIVE\tRETIRED\tDEDUP\tBYTES\tMIN WM")
		for _, s := range snap.Stores {
			fmt.Fprintf(st, "%s\t%d\t%d\t%d\t%d\t%.2f\t%d\t%d\n",
				s.Name, s.Sinks, s.Sources, s.LiveSources, s.RetiredSources,
				s.DedupRatio, s.Bytes, s.MinWatermark)
		}
		st.Flush()
	}

	if len(snap.Gauges) > 0 {
		sb.WriteByte('\n')
		gt := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
		fmt.Fprintln(gt, "GAUGE\tLABELS\tVALUE")
		for _, g := range snap.Gauges {
			parts := make([]string, 0, len(g.Labels))
			for _, l := range g.Labels {
				parts = append(parts, l.Name+"="+l.Value)
			}
			fmt.Fprintf(gt, "%s\t%s\t%.0f\n", g.Name, strings.Join(parts, ","), g.Value)
		}
		gt.Flush()
	}
	io.WriteString(w, sb.String())
}

// rate formats events-per-second compactly (12.3k above 10k).
func rate(delta int64, window float64) string {
	if delta < 0 { // a replaced registration reset the counters
		delta = 0
	}
	v := float64(delta) / window
	if v >= 10_000 {
		return fmt.Sprintf("%.1fk", v/1000)
	}
	return fmt.Sprintf("%.0f", v)
}
