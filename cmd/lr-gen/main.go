// Command lr-gen writes the deterministic Linear Road position-report
// stream as CSV (ts,car_id,speed,pos) to stdout or a file, for inspection
// or for feeding external tools.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"genealog/internal/core"
	"genealog/internal/linearroad"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lr-gen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lr-gen", flag.ContinueOnError)
	cars := fs.Int("cars", 100, "number of cars")
	steps := fs.Int("steps", 600, "number of 30-second reporting rounds")
	stopEvery := fs.Int("stop-every", 10, "inject a breakdown every N steps (0 = never)")
	stopDuration := fs.Int("stop-duration", 6, "reports a broken-down car stays stopped")
	accidentEvery := fs.Int("accident-every", 40, "inject a two-car accident every N steps (0 = never)")
	seed := fs.Int64("seed", 42, "random seed")
	outPath := fs.String("o", "-", "output file (- = stdout)")
	header := fs.Bool("header", true, "write a CSV header line")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	if *header {
		fmt.Fprintln(bw, "ts,car_id,speed,pos")
	}
	g := linearroad.NewGenerator(linearroad.Config{
		Cars: *cars, Steps: *steps, StopEvery: *stopEvery,
		StopDuration: *stopDuration, AccidentEvery: *accidentEvery, Seed: *seed,
	})
	n := 0
	err := g.SourceFunc()(context.Background(), func(t core.Tuple) error {
		p := t.(*linearroad.PositionReport)
		bw.WriteString(strconv.FormatInt(p.Timestamp(), 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.Itoa(int(p.CarID)))
		bw.WriteByte(',')
		bw.WriteString(strconv.Itoa(int(p.Speed)))
		bw.WriteByte(',')
		bw.WriteString(strconv.Itoa(int(p.Pos)))
		bw.WriteByte('\n')
		n++
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lr-gen: wrote %d position reports\n", n)
	return nil
}
