package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "lr.csv")
	if err := run([]string{"-cars", "3", "-steps", "4", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "ts,car_id,speed,pos" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+3*4 {
		t.Fatalf("lines = %d, want header + 12 records", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,0,") {
		t.Fatalf("first record = %q", lines[1])
	}
}

func TestRunNoHeader(t *testing.T) {
	out := filepath.Join(t.TempDir(), "lr.csv")
	if err := run([]string{"-cars", "1", "-steps", "2", "-header=false", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if strings.Contains(string(data), "ts,car_id") {
		t.Fatal("header must be suppressed")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flags must fail")
	}
}

func TestRunRejectsUnwritablePath(t *testing.T) {
	if err := run([]string{"-o", filepath.Join(t.TempDir(), "no", "such", "dir", "x.csv")}); err == nil {
		t.Fatal("unwritable output path must fail")
	}
}
