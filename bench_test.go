// Benchmarks regenerating the paper's evaluation (one benchmark family per
// figure). Each Fig12/Fig13 benchmark executes a full measured run of one
// (query, technique) cell and reports the paper's metrics — throughput,
// latency, memory — as custom benchmark outputs, so
//
//	go test -bench BenchmarkFig12 -benchmem
//
// prints the rows of Figure 12. BenchmarkFig14 isolates the contribution
// graph traversal on the four queries' graph shapes. For tabular output
// with confidence intervals, use cmd/genealog-bench instead.
package genealog_test

import (
	"context"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"genealog/internal/clickstream"
	"genealog/internal/core"
	"genealog/internal/harness"
	"genealog/internal/linearroad"
	"genealog/internal/ops"
	"genealog/internal/provenance"
	"genealog/internal/query"
	"genealog/internal/smartgrid"
	"genealog/internal/telemetry"
	"genealog/internal/transport"
)

// benchOptions is the workload used by the figure benchmarks: large enough
// for stable rates, small enough to iterate.
func benchOptions() harness.Options {
	return harness.Options{
		LR: linearroad.Config{
			Cars: 100, Steps: 300, StopEvery: 10, StopDuration: 6,
			AccidentEvery: 40, Seed: 42,
		},
		SG: smartgrid.Config{
			Meters: 60, Days: 40, BlackoutEvery: 7,
			BlackoutMeters: smartgrid.BlackoutMeterThreshold + 1,
			AnomalyEvery:   5, AnomalyValue: 300, Seed: 7,
		},
		CS: clickstream.Config{
			Users: 60, Windows: 40, HotEvery: 5, Pages: 100, Seed: 23,
		},
		MemSampleEvery: 2 * time.Millisecond,
	}
}

func benchFigure(b *testing.B, deployment harness.Deployment) {
	for _, q := range harness.Queries {
		for _, m := range harness.Modes {
			b.Run(string(q)+"/"+string(m), func(b *testing.B) {
				o := benchOptions()
				o.Query, o.Mode, o.Deployment = q, m, deployment
				var last harness.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := harness.Run(context.Background(), o)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.StopTimer()
				b.ReportMetric(last.ThroughputTPS, "tuples/s")
				b.ReportMetric(last.AvgLatencyMs, "lat-ms")
				b.ReportMetric(last.AvgMemMB, "avgmem-MB")
				b.ReportMetric(last.MaxMemMB, "maxmem-MB")
				if deployment == harness.Inter {
					b.ReportMetric(float64(last.NetBytes), "net-B")
				}
			})
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: intra-process overhead of NP, GL
// and BL on Q1-Q4.
func BenchmarkFig12(b *testing.B) { benchFigure(b, harness.Intra) }

// BenchmarkFig13 regenerates Figure 13: the same grid across three SPE
// instances connected by serialising links.
func BenchmarkFig13(b *testing.B) { benchFigure(b, harness.Inter) }

// BenchmarkFig14 regenerates Figure 14's intra-process panel: the cost of
// one contribution-graph traversal for each query's graph shape (Q1: 4
// sources through one aggregate; Q2: 8 through two; Q3: 192 through nested
// daily aggregates; Q4: 25 through a join over a daily window).
func BenchmarkFig14(b *testing.B) {
	b.Run("Q1", func(b *testing.B) { benchTraversal(b, aggregateGraph(4)) })
	b.Run("Q2", func(b *testing.B) { benchTraversal(b, q2Graph()) })
	b.Run("Q3", func(b *testing.B) { benchTraversal(b, q3Graph()) })
	b.Run("Q4", func(b *testing.B) { benchTraversal(b, q4Graph()) })
}

func benchTraversal(b *testing.B, root core.Tuple) {
	want := len(core.FindProvenance(root))
	b.ReportMetric(float64(want), "graph-size")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := core.FindProvenance(root); len(got) != want {
			b.Fatalf("traversal returned %d tuples, want %d", len(got), want)
		}
	}
}

// benchTuple is a minimal Traceable tuple for graph construction.
type benchTuple struct{ core.Base }

func bt(ts int64) *benchTuple { return &benchTuple{Base: core.NewBase(ts)} }

// aggregateGraph builds one aggregate output over n chained source tuples
// (Q1's shape with n=4).
func aggregateGraph(n int) core.Tuple {
	srcs := make([]*benchTuple, n)
	for i := range srcs {
		srcs[i] = bt(int64(i))
		srcs[i].SetKind(core.KindSource)
		if i > 0 {
			srcs[i-1].SetNext(srcs[i])
		}
	}
	out := bt(0)
	out.SetKind(core.KindAggregate)
	out.SetU2(srcs[0])
	out.SetU1(srcs[n-1])
	return out
}

// q2Graph: an aggregate of two Q1-shaped aggregates (8 sources).
func q2Graph() core.Tuple {
	in1 := aggregateGraph(4).(*benchTuple)
	in2 := aggregateGraph(4).(*benchTuple)
	in1.SetNext(in2)
	out := bt(0)
	out.SetKind(core.KindAggregate)
	out.SetU2(in1)
	out.SetU1(in2)
	return out
}

// q3Graph: an aggregate of 8 daily aggregates of 24 readings each (192
// sources).
func q3Graph() core.Tuple {
	days := make([]*benchTuple, 8)
	for i := range days {
		days[i] = aggregateGraph(24).(*benchTuple)
		if i > 0 {
			days[i-1].SetNext(days[i])
		}
	}
	out := bt(0)
	out.SetKind(core.KindAggregate)
	out.SetU2(days[0])
	out.SetU1(days[7])
	return out
}

// q4Graph: a join of a daily aggregate (24 readings) with a midnight
// reading (25 sources).
func q4Graph() core.Tuple {
	daily := aggregateGraph(24)
	midnight := bt(24)
	midnight.SetKind(core.KindSource)
	out := bt(24)
	out.SetKind(core.KindJoin)
	out.SetU1(midnight)
	out.SetU2(daily)
	return out
}

// BenchmarkAdaptiveBatch measures the adaptive batch-sizing controller on
// the bursty clickstream workload: the Q5 source alternates between a fast
// burst phase and a near-idle phase, the regime where no fixed batch size
// wins — batch 1 keeps idle-phase latency low but throttles the bursts,
// batch 64 absorbs the bursts but holds tuples hostage in half-empty
// batches while the source trickles. The adaptive cell lets the AIMD
// controller resize live from queue occupancy and batch fill. The
// acceptance targets: adaptive throughput within 10% of fixed-64, adaptive
// p99 latency below fixed-64 (which pays the batch-linger tail in the idle
// phase). Run with
//
//	go test -bench BenchmarkAdaptiveBatch -benchtime 1x
func BenchmarkAdaptiveBatch(b *testing.B) {
	cells := []struct {
		name string
		set  func(o *harness.Options)
	}{
		{"fixed-1", func(o *harness.Options) { o.BatchSize = 1 }},
		{"fixed-64", func(o *harness.Options) { o.BatchSize = 64 }},
		{"adaptive", func(o *harness.Options) { o.AdaptiveBatch = true }},
	}
	refSinks := int64(-1)
	for _, c := range cells {
		b.Run(c.name, func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				o.Query, o.Mode, o.Deployment = harness.Q5, harness.ModeNP, harness.Intra
				o.SourceBurst = &ops.BurstPacing{
					BurstRate: 200_000, IdleRate: 1_000,
					BurstFor: 20 * time.Millisecond, IdleFor: 40 * time.Millisecond,
				}
				c.set(&o)
				r, err := harness.Run(context.Background(), o)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			if refSinks == -1 {
				refSinks = last.SinkTuples
			} else if last.SinkTuples != refSinks {
				b.Fatalf("%s produced %d sink tuples, reference %d", c.name, last.SinkTuples, refSinks)
			}
			b.ReportMetric(last.ThroughputTPS, "tuples/s")
			b.ReportMetric(last.P99LatencyMs, "p99-ms")
			b.ReportMetric(last.P50LatencyMs, "p50-ms")
		})
	}
}

// BenchmarkSizeReport regenerates the §7 provenance-volume remark: GL
// provenance bytes as a fraction of source bytes per query.
func BenchmarkSizeReport(b *testing.B) {
	for _, q := range harness.Queries {
		b.Run(string(q), func(b *testing.B) {
			o := benchOptions()
			o.Query, o.Mode, o.Deployment = q, harness.ModeGL, harness.Intra
			var last harness.Result
			for i := 0; i < b.N; i++ {
				r, err := harness.Run(context.Background(), o)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(100*last.ProvRatio(), "prov-%")
			b.ReportMetric(float64(last.ProvBytes), "prov-B")
			b.ReportMetric(float64(last.SourceBytes), "source-B")
		})
	}
}

// BenchmarkProvStoreOverhead measures the cost of serving-side provenance
// persistence: a full GL run of Q1 with the durable provenance store off
// versus on (append-only file log), serial and at Parallelism(4). The store
// ingests every assembled contribution set — deduplicated, watermark-retired
// — so the delta over store-off is the price of turning provenance from a
// run-time observation into a queryable artifact. Run with
//
//	go test -bench BenchmarkProvStoreOverhead -benchtime 1x
func BenchmarkProvStoreOverhead(b *testing.B) {
	for _, p := range []int{1, 4} {
		for _, store := range []bool{false, true} {
			b.Run(fmt.Sprintf("parallelism-%d/store-%v", p, store), func(b *testing.B) {
				o := benchOptions()
				o.Query, o.Mode, o.Deployment = harness.Q1, harness.ModeGL, harness.Intra
				o.Parallelism = p
				if store {
					o.StorePath = filepath.Join(b.TempDir(), "prov.glprov")
				}
				var last harness.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := harness.Run(context.Background(), o)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.StopTimer()
				if store && (last.ProvStoreSinks != last.SinkTuples || last.ProvStoreBytes == 0) {
					b.Fatalf("store did not persist every result: %d sinks stored, %d delivered, %d bytes",
						last.ProvStoreSinks, last.SinkTuples, last.ProvStoreBytes)
				}
				b.ReportMetric(last.ThroughputTPS, "tuples/s")
				if store {
					b.ReportMetric(float64(last.ProvStoreBytes), "store-B")
					b.ReportMetric(last.ProvStoreDedup, "dedup-x")
				}
			})
		}
	}
}

// BenchmarkAblationSelectiveProvenance measures the paper's future-work
// item (i): an Aggregate whose output depends on a single window tuple
// (max) with full-window provenance versus selective provenance. The
// selective variant traverses and retains one tuple per window instead of
// the whole window.
func BenchmarkAblationSelectiveProvenance(b *testing.B) {
	for _, selective := range []bool{false, true} {
		name := "full-window"
		if selective {
			name = "selective"
		}
		b.Run(name, func(b *testing.B) {
			var traversed float64
			for i := 0; i < b.N; i++ {
				traversed = runMaxAggregate(b, selective)
			}
			b.ReportMetric(traversed, "prov-tuples/sink")
		})
	}
}

func runMaxAggregate(b *testing.B, selective bool) float64 {
	qb := query.New("ablation", query.WithInstrumenter(&core.Genealog{}))
	src := qb.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
		for i := 0; i < 50_000; i++ {
			if err := emit(&ablTuple{Base: core.NewBase(int64(i)), Val: int64(i % 997)}); err != nil {
				return err
			}
		}
		return nil
	})
	spec := ops.AggregateSpec{
		WS: 100, WA: 100,
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			max := w[0].(*ablTuple)
			for _, t := range w {
				if v := t.(*ablTuple); v.Val > max.Val {
					max = v
				}
			}
			return &ablTuple{Base: core.NewBase(start), Val: max.Val}
		},
	}
	if selective {
		spec.Contributors = func(w []core.Tuple) []core.Tuple {
			max := w[0]
			for _, t := range w {
				if t.(*ablTuple).Val > max.(*ablTuple).Val {
					max = t
				}
			}
			return []core.Tuple{max}
		}
	}
	agg := qb.AddAggregate("max", spec)
	qb.Connect(src, agg)
	so, u := provenance.AddSU(qb, "su", agg, provenance.SUConfig{})
	qb.Connect(so, qb.AddSink("sink", nil))
	var results, sources int
	provenance.AddCollector(qb, "prov", u, func(r provenance.Result) {
		results++
		sources += len(r.Sources)
	})
	q, err := qb.Build()
	if err != nil {
		b.Fatal(err)
	}
	if err := q.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	if results == 0 {
		b.Fatal("no provenance results")
	}
	return float64(sources) / float64(results)
}

type ablTuple struct {
	core.Base
	Val int64
}

func (t *ablTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

// BenchmarkShardScaling measures the keyed shard-parallel execution layer:
// the same keyed aggregation with a CPU-heavy fold at parallelism 1, 2 and
// 4. On a multi-core runner the tuples/s metric scales towards the shard
// count (the acceptance target is >= 1.5x at parallelism 4 vs 1); the sink
// output is byte-identical at every level, which sink-count below asserts
// cheaply. Run with
//
//	go test -bench BenchmarkShardScaling -benchtime 1x
func BenchmarkShardScaling(b *testing.B) {
	serialSinks := -1
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism-%d", p), func(b *testing.B) {
			var tput float64
			var sinks int
			for i := 0; i < b.N; i++ {
				tput, sinks = runScalingAggregate(b, p, 1, 400)
			}
			if serialSinks == -1 {
				serialSinks = sinks
			} else if sinks != serialSinks {
				b.Fatalf("parallelism %d produced %d sink tuples, serial %d", p, sinks, serialSinks)
			}
			b.ReportMetric(tput, "tuples/s")
		})
	}
}

// BenchmarkBatchedThroughput measures the batched stream transport on a
// Q1/Q3-shaped pipeline — map and filter prefix stages feeding a keyed
// aggregation with a cheap fold — where the per-tuple channel operations,
// not the user functions, dominate: batch size 64 versus unbatched, serial
// and at Parallelism(4). The acceptance target is >= 1.5x tuples/s at
// Parallelism(4) with batching versus batch size 1; the sink count is
// asserted identical across all cells. Run with
//
//	go test -bench BenchmarkBatchedThroughput -benchtime 1x
func BenchmarkBatchedThroughput(b *testing.B) {
	serialSinks := -1
	for _, p := range []int{1, 4} {
		for _, batch := range []int{1, 64} {
			b.Run(fmt.Sprintf("parallelism-%d/batch-%d", p, batch), func(b *testing.B) {
				var tput float64
				var sinks int
				for i := 0; i < b.N; i++ {
					tput, sinks = runBatchedPipeline(b, p, batch, true, true, nil)
				}
				if serialSinks == -1 {
					serialSinks = sinks
				} else if sinks != serialSinks {
					b.Fatalf("parallelism %d batch %d produced %d sink tuples, serial %d", p, batch, sinks, serialSinks)
				}
				b.ReportMetric(tput, "tuples/s")
			})
		}
	}
}

// BenchmarkFusedThroughput measures the physical planner on the same
// map -> filter -> keyed-aggregate pipeline: fusion off (one goroutine and
// stream per logical operator, the pre-planner engine) versus fusion on
// (map+filter fused, and — at Parallelism(4) — the fused prefix hoisted
// into the shard lanes behind a partitioner that routes by the map's
// declared ShardKey), with the columnar pass off (row closures) versus on
// (the prefix as a vectorized ColChain, routing keys extracted
// batch-at-a-time), serial and at Parallelism(4), unbatched and at batch
// 64. The sink count is asserted identical across all cells. Run with
//
//	go test -bench BenchmarkFusedThroughput -benchtime 1x
func BenchmarkFusedThroughput(b *testing.B) {
	serialSinks := -1
	for _, fused := range []bool{false, true} {
		for _, vec := range []bool{false, true} {
			for _, p := range []int{1, 4} {
				for _, batch := range []int{1, 64} {
					b.Run(fmt.Sprintf("fused-%v/vec-%v/parallelism-%d/batch-%d", fused, vec, p, batch), func(b *testing.B) {
						var tput float64
						var sinks int
						for i := 0; i < b.N; i++ {
							tput, sinks = runBatchedPipeline(b, p, batch, fused, vec, nil)
						}
						if serialSinks == -1 {
							serialSinks = sinks
						} else if sinks != serialSinks {
							b.Fatalf("fused=%v vec=%v parallelism %d batch %d produced %d sink tuples, serial %d",
								fused, vec, p, batch, sinks, serialSinks)
						}
						b.ReportMetric(tput, "tuples/s")
					})
				}
			}
		}
	}
}

// BenchmarkTelemetryOverhead measures what live telemetry costs the batched
// map -> filter -> keyed-aggregate pipeline at batch 64: off (the default nil
// hook pointers — one dead branch per batch) versus on (a registry attached,
// every stream and segment counting). The off cell is the regression guard:
// it must stay within noise of the telemetry-free engine, since disabled
// telemetry is a single nil check per batch and nothing per tuple. Run with
//
//	go test -bench BenchmarkTelemetryOverhead -benchtime 1x
func BenchmarkTelemetryOverhead(b *testing.B) {
	offSinks := -1
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("telemetry-%v", on), func(b *testing.B) {
			var tput float64
			var sinks int
			for i := 0; i < b.N; i++ {
				var telem *telemetry.Registry
				if on {
					telem = telemetry.NewRegistry()
				}
				tput, sinks = runBatchedPipeline(b, 1, 64, true, true, telem)
				if on {
					// The registry must have seen the traffic it claims to
					// measure, or the "on" cell benchmarks nothing.
					snap := telem.Snapshot()
					if len(snap.Queries) != 1 || len(snap.Queries[0].Streams) == 0 {
						b.Fatalf("telemetry-on run registered %d queries", len(snap.Queries))
					}
				}
			}
			if offSinks == -1 {
				offSinks = sinks
			} else if sinks != offSinks {
				b.Fatalf("telemetry=%v produced %d sink tuples, off %d", on, sinks, offSinks)
			}
			b.ReportMetric(tput, "tuples/s")
		})
	}
}

// runBatchedPipeline runs source -> map -> filter -> keyed aggregate ->
// sink over keys x steps tuples, the transport-dominated workload of
// BenchmarkBatchedThroughput and BenchmarkFusedThroughput, returning
// throughput and the sink count. fuse toggles the physical planner; the map
// declares its input partition key so the fused map+filter prefix hoists
// into the shard lanes at parallelism > 1. vectorize toggles the columnar
// pass: map, filter and the aggregate's group-by key all declare typed
// kernels, so with fusion the map+filter prefix runs as a ColChain and the
// shard partitioner extracts routing keys batch-at-a-time.
func runBatchedPipeline(b *testing.B, parallelism, batch int, fuse, vectorize bool, telem *telemetry.Registry) (float64, int) {
	const (
		keys  = 64
		steps = 400
	)
	keyNames := make([]string, keys)
	for k := range keyNames {
		keyNames[k] = "k" + strconv.Itoa(k)
	}
	opts := []query.Option{query.WithInstrumenter(core.Noop{}), query.WithBatchSize(batch),
		query.WithFusion(fuse), query.WithVectorize(vectorize)}
	if telem != nil {
		opts = append(opts, query.WithTelemetry(telem))
	}
	qb := query.New("batched", opts...)
	src := qb.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
		for ts := 0; ts < steps; ts++ {
			for k := 0; k < keys; k++ {
				if err := emit(&keyedTuple{Base: core.NewBase(int64(ts)), Key: keyNames[k], Val: int64(ts + k)}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	mp := qb.AddMap("map", func(t core.Tuple, emit func(core.Tuple)) { emit(t) }).
		ShardKeyed(func(t core.Tuple) string { return t.(*keyedTuple).Key }).
		Columnar(query.ColSpec{Schema: keyedSchema, Map: keyedIdentityKernel, Key: keyedKeyKernel})
	fl := qb.AddFilter("filter", func(t core.Tuple) bool { return t.(*keyedTuple).Val >= 0 }).
		Columnar(query.ColSpec{Schema: keyedSchema, Filter: keyedNonNegKernel})
	agg := qb.AddAggregate("agg", ops.AggregateSpec{
		WS: 8, WA: 8,
		Key: func(t core.Tuple) string { return t.(*keyedTuple).Key },
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			var sum int64
			for _, t := range w {
				sum += t.(*keyedTuple).Val
			}
			return &keyedTuple{Base: core.NewBase(start), Key: key, Val: sum}
		},
	}).Columnar(query.ColSpec{Schema: keyedSchema, Key: keyedKeyKernel}).Parallel(parallelism)
	var sinks int
	sink := qb.AddSink("sink", func(core.Tuple) error { sinks++; return nil })
	qb.Connect(src, mp)
	qb.Connect(mp, fl)
	qb.Connect(fl, agg)
	qb.Connect(agg, sink)
	q, err := qb.Build()
	if err != nil {
		b.Fatal(err)
	}
	begin := time.Now()
	if err := q.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(begin)
	if sinks == 0 {
		b.Fatal("no sink tuples")
	}
	return float64(keys*steps) / elapsed.Seconds(), sinks
}

// keyedTuple carries a precomputed group key so key extraction allocates
// nothing (the transport, not key formatting, is what the batching
// benchmark measures).
type keyedTuple struct {
	core.Base
	Key string
	Val int64
}

func (t *keyedTuple) CloneTuple() core.Tuple {
	cp := *t
	cp.ResetProvenance()
	return &cp
}

// keyedSchema is keyedTuple's columnar schema: the group key and the value.
var keyedSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "key", Kind: ops.ColString, Str: func(t core.Tuple) string { return t.(*keyedTuple).Key }},
	{Name: "val", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return t.(*keyedTuple).Val }},
}}

const (
	keyedFieldKey = 0
	keyedFieldVal = 1
)

// keyedIdentityKernel vectorizes the pipeline's identity map using the
// MapKernel identity contract: returning nil declares every selected row
// maps to itself, so the runtime materialises nothing.
func keyedIdentityKernel(c *ops.ColBatch, sel []int, dst []core.Tuple) []core.Tuple {
	return nil
}

// keyedNonNegKernel vectorizes the pipeline's Val >= 0 filter.
func keyedNonNegKernel(c *ops.ColBatch, sel []int, dst []int) []int {
	vals := c.Int64s(keyedFieldVal)
	for _, pos := range sel {
		if vals[pos] >= 0 {
			dst = append(dst, pos)
		}
	}
	return dst
}

// keyedKeyKernel vectorizes the pipeline's group-by/routing key extraction.
func keyedKeyKernel(c *ops.ColBatch, sel []int, dst []string) []string {
	keys := c.Strings(keyedFieldKey)
	for _, pos := range sel {
		dst = append(dst, keys[pos])
	}
	return dst
}

// BenchmarkKernels compares the row path against the columnar path on the
// physical operators themselves: the same stateless stages running as a
// tuple-at-a-time FusedChain (row) versus a vectorized ColChain (vec), over
// identical pre-filled input streams at batch 1, 64 and 1024. The chain
// cells — an identity map feeding a selective filter, the batched
// pipeline's stateless prefix — are the acceptance target: at a batch size
// >= 64 the columnar chain must reach >= 1.3x the row chain's tuples/s.
// It clears that at both 64 and 1024 (~1.4x): the chain binds with a nil
// fill selection while every row is still live, so column extraction
// ranges the rows directly, and an all-survivors run delivers as one bulk
// gather — the per-run fixed costs that used to hold batch 64 to ~1.2x.
// At batch 1 the row path is expected to win (a one-row extraction is all
// overhead); that cell is the floor the planner's batch-size choice trades
// against. Run with
//
//	go test -bench BenchmarkKernels -benchtime 1x
func BenchmarkKernels(b *testing.B) {
	// The kernels read only the value column, so that is all the stages
	// declare — extraction cost tracks the columns used, not the tuple.
	valSchema := &ops.ColSchema{Fields: []ops.ColField{
		{Name: "val", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return t.(*keyedTuple).Val }},
	}}
	pred := func(t core.Tuple) bool { return t.(*keyedTuple).Val%2 == 0 }
	evenKernel := func(c *ops.ColBatch, sel []int, dst []int) []int {
		vals := c.Int64s(0)
		for _, pos := range sel {
			if vals[pos]%2 == 0 {
				dst = append(dst, pos)
			}
		}
		return dst
	}
	identityMap := func(t core.Tuple, emit func(core.Tuple)) { emit(t) }
	transformMap := func(t core.Tuple, emit func(core.Tuple)) {
		kt := t.(*keyedTuple)
		emit(&keyedTuple{Base: core.NewBase(kt.Timestamp()), Key: kt.Key, Val: kt.Val + 1})
	}
	transformKernel := func(c *ops.ColBatch, sel []int, dst []core.Tuple) []core.Tuple {
		ts, vals := c.Timestamps(), c.Int64s(0)
		for _, pos := range sel {
			kt := c.Rows[pos].(*keyedTuple)
			dst = append(dst, &keyedTuple{Base: core.NewBase(ts[pos]), Key: kt.Key, Val: vals[pos] + 1})
		}
		return dst
	}

	families := []struct {
		name string
		row  []ops.FusedStage
		vec  []ops.ColStage
	}{
		{"filter",
			[]ops.FusedStage{{Name: "even", Kind: ops.StageFilter, Pred: pred}},
			[]ops.ColStage{{Name: "even", Kind: ops.StageFilter, Schema: valSchema, Filter: evenKernel}}},
		{"map",
			[]ops.FusedStage{{Name: "inc", Kind: ops.StageMap, Map: transformMap}},
			[]ops.ColStage{{Name: "inc", Kind: ops.StageMap, Schema: valSchema, Map: transformKernel}}},
		{"chain",
			[]ops.FusedStage{
				{Name: "pass", Kind: ops.StageMap, Map: identityMap},
				{Name: "even", Kind: ops.StageFilter, Pred: pred}},
			[]ops.ColStage{
				{Name: "pass", Kind: ops.StageMap, Schema: valSchema, Map: keyedIdentityKernel},
				{Name: "even", Kind: ops.StageFilter, Schema: valSchema, Filter: evenKernel}}},
	}

	const total = 4096
	tuples := make([]core.Tuple, total)
	for i := range tuples {
		tuples[i] = &keyedTuple{Base: core.NewBase(int64(i / 8)), Key: "k" + strconv.Itoa(i%64), Val: int64(i)}
	}
	run := func(b *testing.B, batch int, mk func(in, out *ops.Stream) ops.Operator) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			in := ops.NewBatchedStream("in", total+1, batch)
			if err := in.SendRun(ctx, tuples); err != nil {
				b.Fatal(err)
			}
			in.CloseSend(ctx)
			out := ops.NewBatchedStream("out", total+1, batch)
			done := make(chan error, 1)
			op := mk(in, out)
			go func() { done <- op.Run(ctx) }()
			outs := 0
			for {
				batch, ok, err := out.RecvBatch(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
				outs += len(batch)
			}
			if err := <-done; err != nil {
				b.Fatal(err)
			}
			if outs == 0 {
				b.Fatal("chain produced no output")
			}
		}
		b.ReportMetric(float64(b.N*total)/b.Elapsed().Seconds(), "tuples/s")
	}

	for _, batch := range []int{1, 64, 1024} {
		for _, fam := range families {
			b.Run(fmt.Sprintf("%s/row/batch-%d", fam.name, batch), func(b *testing.B) {
				run(b, batch, func(in, out *ops.Stream) ops.Operator {
					return ops.NewFusedChain(fam.name, in, out, fam.row, core.Noop{})
				})
			})
			b.Run(fmt.Sprintf("%s/vec/batch-%d", fam.name, batch), func(b *testing.B) {
				run(b, batch, func(in, out *ops.Stream) ops.Operator {
					return ops.NewColChain(fam.name, in, out, fam.vec, core.Noop{})
				})
			})
		}
	}
}

// statefulValSchema is the window state the stateful benchmark's kernels
// declare: only the value column the fold and residual actually read. The
// group key stays on the row tuples (the key kernel reads the meta column),
// so window state buffers one int64 per tuple — the same discipline the
// workload queries follow (Q1 buffers car/speed/pos, never a string).
var statefulValSchema = &ops.ColSchema{Fields: []ops.ColField{
	{Name: "val", Kind: ops.ColInt64, Int: func(t core.Tuple) int64 { return t.(*keyedTuple).Val }},
}}

const statefulFieldVal = 0

// statefulKeyKernel extracts group/routing keys from the meta column — the
// precomputed Key needs no typed column of its own.
func statefulKeyKernel(c *ops.ColBatch, sel []int, dst []string) []string {
	for _, pos := range sel {
		dst = append(dst, c.Rows[pos].(*keyedTuple).Key)
	}
	return dst
}

// colSumFold is the columnar twin of the stateful benchmark's row sum fold:
// one pass over the window segment's contiguous value column instead of one
// interface deref and type assertion per window tuple.
func colSumFold(seg *ops.ColSeg, start, end int64, key string) core.Tuple {
	var sum int64
	for _, v := range seg.Int64s(statefulFieldVal) {
		sum += v
	}
	return &keyedTuple{Base: core.NewBase(start), Key: key, Val: sum}
}

// evenSumProbe is the columnar residual of the stateful benchmark's join
// predicate (key equality enforced by the hash probe, parity of the pair sum
// as the residual). The parity test is symmetric, so one kernel serves both
// probe directions.
func evenSumProbe(t core.Tuple, cand *ops.ColSeg, sel []int, dst []int) []int {
	tv := t.(*keyedTuple).Val
	vals := cand.Int64s(statefulFieldVal)
	for _, pos := range sel {
		if (tv+vals[pos])%2 == 0 {
			dst = append(dst, pos)
		}
	}
	return dst
}

// runStatefulAggregate runs source -> keyed sliding-window sum -> sink over
// keys x steps tuples, returning source throughput and the sink count. The
// window slides (WS 64, WA 4), so every tuple is folded WS/WA times — the
// fold, not the transport, is what separates the row and columnar paths.
func runStatefulAggregate(b *testing.B, parallelism, batch int, vectorize bool) (float64, int) {
	const (
		keys  = 64
		steps = 400
	)
	keyNames := make([]string, keys)
	for k := range keyNames {
		keyNames[k] = "k" + strconv.Itoa(k)
	}
	qb := query.New("stateful-agg", query.WithInstrumenter(core.Noop{}), query.WithBatchSize(batch),
		query.WithVectorize(vectorize))
	src := qb.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
		for ts := 0; ts < steps; ts++ {
			for k := 0; k < keys; k++ {
				if err := emit(&keyedTuple{Base: core.NewBase(int64(ts)), Key: keyNames[k], Val: int64(ts + k)}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	agg := qb.AddAggregate("agg", ops.AggregateSpec{
		WS: 64, WA: 4,
		Key: func(t core.Tuple) string { return t.(*keyedTuple).Key },
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			var sum int64
			for _, t := range w {
				sum += t.(*keyedTuple).Val
			}
			return &keyedTuple{Base: core.NewBase(start), Key: key, Val: sum}
		},
	}).ColumnarAgg(query.AggColSpec{Schema: statefulValSchema, Key: statefulKeyKernel, Fold: colSumFold}).
		Parallel(parallelism)
	var sinks int
	sink := qb.AddSink("sink", func(core.Tuple) error { sinks++; return nil })
	qb.Connect(src, agg)
	qb.Connect(agg, sink)
	q, err := qb.Build()
	if err != nil {
		b.Fatal(err)
	}
	begin := time.Now()
	if err := q.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(begin)
	if sinks == 0 {
		b.Fatal("no sink tuples")
	}
	return float64(keys*steps) / elapsed.Seconds(), sinks
}

// runStatefulJoin runs two sources -> keyed windowed join -> sink over
// 2 x keys x steps tuples, returning source throughput and the sink count.
// The predicate is key equality plus a parity residual over the pair sum, so
// the columnar path exercises both the hash probe and the residual kernel.
func runStatefulJoin(b *testing.B, parallelism, batch int, vectorize bool) (float64, int) {
	const (
		keys  = 64
		steps = 400
	)
	keyNames := make([]string, keys)
	for k := range keyNames {
		keyNames[k] = "k" + strconv.Itoa(k)
	}
	source := func(scale int64) func(ctx context.Context, emit func(core.Tuple) error) error {
		return func(ctx context.Context, emit func(core.Tuple) error) error {
			for ts := 0; ts < steps; ts++ {
				for k := 0; k < keys; k++ {
					if err := emit(&keyedTuple{Base: core.NewBase(int64(ts)), Key: keyNames[k], Val: scale*int64(ts) + int64(k)}); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	qb := query.New("stateful-join", query.WithInstrumenter(core.Noop{}), query.WithBatchSize(batch),
		query.WithVectorize(vectorize))
	srcL := qb.AddSource("left", source(1))
	srcR := qb.AddSource("right", source(2))
	join := qb.AddJoin("join", ops.JoinSpec{
		WS: 4,
		Predicate: func(l, r core.Tuple) bool {
			lt, rt := l.(*keyedTuple), r.(*keyedTuple)
			return lt.Key == rt.Key && (lt.Val+rt.Val)%2 == 0
		},
		Combine: func(l, r core.Tuple) core.Tuple {
			lt, rt := l.(*keyedTuple), r.(*keyedTuple)
			return &keyedTuple{Base: core.NewBase(0), Key: lt.Key, Val: lt.Val + rt.Val}
		},
		LeftKey:  func(t core.Tuple) string { return t.(*keyedTuple).Key },
		RightKey: func(t core.Tuple) string { return t.(*keyedTuple).Key },
	}).ColumnarJoin(query.JoinColSpec{
		Left: statefulValSchema, Right: statefulValSchema,
		LeftKey: statefulKeyKernel, RightKey: statefulKeyKernel,
		ResidualL: evenSumProbe, ResidualR: evenSumProbe,
	}).Parallel(parallelism)
	var sinks int
	sink := qb.AddSink("sink", func(core.Tuple) error { sinks++; return nil })
	qb.ConnectPort(srcL, join, query.PortLeft)
	qb.ConnectPort(srcR, join, query.PortRight)
	qb.Connect(join, sink)
	q, err := qb.Build()
	if err != nil {
		b.Fatal(err)
	}
	begin := time.Now()
	if err := q.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(begin)
	if sinks == 0 {
		b.Fatal("no sink tuples")
	}
	return float64(2*keys*steps) / elapsed.Seconds(), sinks
}

// BenchmarkStatefulKernels compares the row path against the columnar path
// on the stateful operators: the same keyed sliding-window aggregation (sum
// fold) and keyed windowed join (parity residual) running with row window
// state versus ColWindow state and fold/probe kernels, serial and at
// Parallelism(4), batch 64 and 1024. The acceptance target is the columnar
// keyed-aggregate pipeline at >= 1.3x the row path's tuples/s at batch
// 1024; the sink count is asserted identical across every cell of each
// pipeline (the count half of the byte-identity the equivalence tests check
// in full). Run with
//
//	go test -bench BenchmarkStatefulKernels -benchtime 1x
func BenchmarkStatefulKernels(b *testing.B) {
	pipelines := []struct {
		name   string
		tuples int
		run    func(b *testing.B, parallelism, batch int, vectorize bool) (float64, int)
	}{
		{"agg", 64 * 400, runStatefulAggregate},
		{"join", 2 * 64 * 400, runStatefulJoin},
	}
	for _, pl := range pipelines {
		refSinks := -1
		for _, vec := range []bool{false, true} {
			path := "row"
			if vec {
				path = "vec"
			}
			for _, p := range []int{1, 4} {
				for _, batch := range []int{64, 1024} {
					b.Run(fmt.Sprintf("%s/%s/parallelism-%d/batch-%d", pl.name, path, p, batch), func(b *testing.B) {
						var sinks int
						for i := 0; i < b.N; i++ {
							_, sinks = pl.run(b, p, batch, vec)
						}
						if refSinks == -1 {
							refSinks = sinks
						} else if sinks != refSinks {
							b.Fatalf("%s vec=%v parallelism %d batch %d produced %d sink tuples, reference %d",
								pl.name, vec, p, batch, sinks, refSinks)
						}
						// Averaged over every iteration — per-run rates on a
						// shared machine are too noisy to compare cells by.
						b.ReportMetric(float64(b.N*pl.tuples)/b.Elapsed().Seconds(), "tuples/s")
					})
				}
			}
		}
	}
}

// runScalingAggregate runs one keyed aggregation over keys x steps source
// tuples, returning the source throughput and the sink tuple count.
// foldCost scales the fold's CPU work: 0 selects the cheap payload-only
// fold (channel plumbing dominates; the batching benchmark), higher values
// add synthetic CPU work per window tuple (shard instances dominate; the
// shard-scaling benchmark).
func runScalingAggregate(b *testing.B, parallelism, batch, foldCost int) (float64, int) {
	const (
		keys  = 64
		steps = 200
	)
	qb := query.New("scaling", query.WithInstrumenter(core.Noop{}), query.WithBatchSize(batch))
	src := qb.AddSource("src", func(ctx context.Context, emit func(core.Tuple) error) error {
		for ts := 0; ts < steps; ts++ {
			for k := 0; k < keys; k++ {
				if err := emit(&ablTuple{Base: core.NewBase(int64(ts)), Val: int64(k)}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	agg := qb.AddAggregate("agg", ops.AggregateSpec{
		WS: 8, WA: 2,
		Key: func(t core.Tuple) string { return strconv.FormatInt(t.(*ablTuple).Val, 10) },
		Fold: func(w []core.Tuple, start, end int64, key string) core.Tuple {
			// foldCost > 0 makes the fold deliberately CPU-heavy: the shard
			// instances, not the channel plumbing, dominate so parallel
			// speedup is visible. foldCost == 0 keeps the fold trivial so
			// the transport overhead is what gets measured.
			acc := 0.0
			for _, t := range w {
				v := float64(t.(*ablTuple).Val)
				for i := 0; i < foldCost; i++ {
					acc += math.Sqrt(v + float64(i))
				}
				acc += v
			}
			return &ablTuple{Base: core.NewBase(start), Val: int64(acc)}
		},
	}).Parallel(parallelism)
	var sinks int
	sink := qb.AddSink("sink", func(core.Tuple) error { sinks++; return nil })
	qb.Connect(src, agg)
	qb.Connect(agg, sink)
	q, err := qb.Build()
	if err != nil {
		b.Fatal(err)
	}
	begin := time.Now()
	if err := q.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(begin)
	if sinks == 0 {
		b.Fatal("no sink tuples")
	}
	return float64(keys*steps) / elapsed.Seconds(), sinks
}

// BenchmarkCodec measures the serialisation cost of one tuple crossing an
// inter-process link (the dominant cost of Fig. 13's Q3/Q4 deployments).
func BenchmarkCodec(b *testing.B) {
	linearroad.RegisterWire()
	link := transport.NewLink(transport.WithBuffer(1 << 24))
	in := linearroad.NewPositionReport(1, 2, 3, 4)
	in.SetID(42)
	in.SetKind(core.KindSource)
	b.Run("encode-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := link.Enc.Encode(in); err != nil {
				b.Fatal(err)
			}
			if _, err := link.Dec.Decode(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTraversalScaling measures FindProvenance against growing window
// sizes (the Fig. 14 trend: traversal time grows linearly with the
// contribution graph).
func BenchmarkTraversalScaling(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256, 1024} {
		root := aggregateGraph(n)
		b.Run(fmt.Sprintf("window-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := core.FindProvenance(root); len(got) != n {
					b.Fatal("wrong traversal")
				}
			}
		})
	}
}

// BenchmarkCodecComparison is the serialisation ablation: the gob codec
// (reflection, self-describing) versus the hand-rolled binary codec on the
// tuple types that dominate Fig. 13's network volume.
func BenchmarkCodecComparison(b *testing.B) {
	linearroad.RegisterWire()
	provenance.RegisterWire()
	report := linearroad.NewPositionReport(1, 2, 3, 4)
	report.SetID(42)
	report.SetKind(core.KindSource)
	rec := &provenance.Record{
		Base:     core.NewBase(9),
		SinkID:   7,
		OrigID:   42,
		OrigTs:   1,
		OrigKind: core.KindSource,
		Sink:     linearroad.NewPositionReport(9, 2, 0, 4),
		Orig:     report,
	}
	cases := []struct {
		name  string
		codec transport.Codec
		tuple core.Tuple
	}{
		{"gob/position-report", transport.GobCodec{}, report},
		{"binary/position-report", transport.BinaryCodec{}, report},
		{"gob/unfolded-record", transport.GobCodec{}, rec},
		{"binary/unfolded-record", transport.BinaryCodec{}, rec},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			pipe := transport.NewPipe(1 << 24)
			enc := c.codec.NewEncoder(pipe)
			dec := c.codec.NewDecoder(pipe)
			count := transport.NewCountingWriter(io.Discard)
			sizeEnc := c.codec.NewEncoder(count)
			if err := sizeEnc.Encode(c.tuple); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(count.Bytes()), "first-tuple-B")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := enc.Encode(c.tuple); err != nil {
					b.Fatal(err)
				}
				if _, err := dec.Decode(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
